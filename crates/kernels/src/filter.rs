//! The filter abstraction: every hardware function of the module library
//! has a functional software model here, with sequential and parallel
//! (crossbeam scoped-thread) execution paths.

use serde::{Deserialize, Serialize};

use crate::image::Image;

/// The image-processing kernels of the (extended) module library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterKind {
    /// 3×3 median filter (Table 1's "Median Filter").
    Median,
    /// 3×3 Sobel edge detector (Table 1's "Sobel Filter").
    Sobel,
    /// 3×3 Gaussian smoothing (Table 1's "Smoothing Filter").
    Smoothing,
    /// 4-neighbor Laplacian (extension core).
    Laplacian,
    /// 3×3 grayscale erosion: neighborhood minimum (extension core).
    Erosion,
    /// 3×3 grayscale dilation: neighborhood maximum (extension core).
    Dilation,
    /// Binary threshold at 128 (extension core).
    Threshold,
}

impl FilterKind {
    /// All kernels.
    pub const ALL: [FilterKind; 7] = [
        FilterKind::Median,
        FilterKind::Sobel,
        FilterKind::Smoothing,
        FilterKind::Laplacian,
        FilterKind::Erosion,
        FilterKind::Dilation,
        FilterKind::Threshold,
    ];

    /// The module-library name of this kernel (Table 1 naming).
    pub fn module_name(&self) -> &'static str {
        match self {
            FilterKind::Median => "Median Filter",
            FilterKind::Sobel => "Sobel Filter",
            FilterKind::Smoothing => "Smoothing Filter",
            FilterKind::Laplacian => "Laplacian Filter",
            FilterKind::Erosion => "Erosion Filter",
            FilterKind::Dilation => "Dilation Filter",
            FilterKind::Threshold => "Threshold",
        }
    }

    /// Looks a kernel up by its module-library name.
    pub fn from_module_name(name: &str) -> Option<FilterKind> {
        Self::ALL.iter().copied().find(|k| k.module_name() == name)
    }

    /// Computes one output pixel at `(x, y)`.
    #[inline]
    pub fn pixel(&self, input: &Image, x: usize, y: usize) -> u8 {
        let xi = x as isize;
        let yi = y as isize;
        match self {
            FilterKind::Median => {
                let mut w = window3x3(input, xi, yi);
                median9(&mut w)
            }
            FilterKind::Sobel => {
                let w = window3x3(input, xi, yi);
                let p = |i: usize| w[i] as i32;
                // Gx = [-1 0 1; -2 0 2; -1 0 1], Gy = transpose.
                let gx = -p(0) + p(2) - 2 * p(3) + 2 * p(5) - p(6) + p(8);
                let gy = -p(0) - 2 * p(1) - p(2) + p(6) + 2 * p(7) + p(8);
                (gx.abs() + gy.abs()).min(255) as u8
            }
            FilterKind::Smoothing => {
                let w = window3x3(input, xi, yi);
                let p = |i: usize| w[i] as u32;
                // Gaussian [1 2 1; 2 4 2; 1 2 1] / 16, rounded.
                let sum = p(0)
                    + 2 * p(1)
                    + p(2)
                    + 2 * p(3)
                    + 4 * p(4)
                    + 2 * p(5)
                    + p(6)
                    + 2 * p(7)
                    + p(8);
                ((sum + 8) / 16) as u8
            }
            FilterKind::Laplacian => {
                let c = input.get_clamped(xi, yi) as i32;
                let n = input.get_clamped(xi, yi - 1) as i32;
                let s = input.get_clamped(xi, yi + 1) as i32;
                let e = input.get_clamped(xi + 1, yi) as i32;
                let w = input.get_clamped(xi - 1, yi) as i32;
                (4 * c - n - s - e - w).unsigned_abs().min(255) as u8
            }
            FilterKind::Erosion => *window3x3(input, xi, yi).iter().min().expect("9 elements"),
            FilterKind::Dilation => *window3x3(input, xi, yi).iter().max().expect("9 elements"),
            FilterKind::Threshold => {
                if input.get(x, y) >= 128 {
                    255
                } else {
                    0
                }
            }
        }
    }

    /// Applies the filter sequentially.
    pub fn apply(&self, input: &Image) -> Image {
        Image::from_fn(input.width(), input.height(), |x, y| {
            self.pixel(input, x, y)
        })
    }

    /// Applies the filter with `threads` crossbeam scoped threads, each
    /// computing a horizontal band of output rows. Produces bit-identical
    /// results to [`FilterKind::apply`].
    pub fn apply_parallel(&self, input: &Image, threads: usize) -> Image {
        let width = input.width();
        let height = input.height();
        let mut output = Image::zeros(width, height);
        let bands = output.row_bands_mut(threads.max(1));
        crossbeam::thread::scope(|s| {
            for (start_row, band) in bands {
                s.spawn(move |_| {
                    for (offset, px) in band.iter_mut().enumerate() {
                        let y = start_row + offset / width;
                        let x = offset % width;
                        *px = self.pixel(input, x, y);
                    }
                });
            }
        })
        .expect("filter worker panicked");
        output
    }
}

/// The 3×3 neighborhood of `(x, y)` with edge replication, row-major.
#[inline]
fn window3x3(img: &Image, x: isize, y: isize) -> [u8; 9] {
    [
        img.get_clamped(x - 1, y - 1),
        img.get_clamped(x, y - 1),
        img.get_clamped(x + 1, y - 1),
        img.get_clamped(x - 1, y),
        img.get_clamped(x, y),
        img.get_clamped(x + 1, y),
        img.get_clamped(x - 1, y + 1),
        img.get_clamped(x, y + 1),
        img.get_clamped(x + 1, y + 1),
    ]
}

/// Median of 9 via the 19-compare-exchange optimal network — the same
/// structure the hardware core's sorting network uses.
#[inline]
fn median9(v: &mut [u8; 9]) -> u8 {
    #[inline]
    fn ce(v: &mut [u8; 9], a: usize, b: usize) {
        if v[a] > v[b] {
            v.swap(a, b);
        }
    }
    // Paeth's 19-exchange median-of-9 network.
    ce(v, 1, 2);
    ce(v, 4, 5);
    ce(v, 7, 8);
    ce(v, 0, 1);
    ce(v, 3, 4);
    ce(v, 6, 7);
    ce(v, 1, 2);
    ce(v, 4, 5);
    ce(v, 7, 8);
    ce(v, 0, 3);
    ce(v, 5, 8);
    ce(v, 4, 7);
    ce(v, 3, 6);
    ce(v, 1, 4);
    ce(v, 2, 5);
    ce(v, 4, 7);
    ce(v, 4, 2);
    ce(v, 6, 4);
    ce(v, 4, 2);
    v[4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median9_matches_sort() {
        let cases: [[u8; 9]; 4] = [
            [1, 2, 3, 4, 5, 6, 7, 8, 9],
            [9, 8, 7, 6, 5, 4, 3, 2, 1],
            [5, 5, 5, 1, 9, 5, 3, 7, 5],
            [0, 255, 0, 255, 128, 255, 0, 255, 0],
        ];
        for c in cases {
            let mut a = c;
            let got = median9(&mut a);
            let mut sorted = c;
            sorted.sort_unstable();
            assert_eq!(got, sorted[4], "case {c:?}");
        }
    }

    #[test]
    fn median_preserves_constant_images() {
        let img = Image::constant(16, 16, 77);
        assert_eq!(FilterKind::Median.apply(&img), img);
    }

    #[test]
    fn smoothing_preserves_constant_images() {
        let img = Image::constant(16, 16, 201);
        assert_eq!(FilterKind::Smoothing.apply(&img), img);
    }

    #[test]
    fn sobel_is_zero_on_constant_images() {
        let img = Image::constant(16, 16, 123);
        let out = FilterKind::Sobel.apply(&img);
        assert!(out.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn sobel_detects_a_vertical_edge() {
        let img = Image::from_fn(8, 8, |x, _| if x < 4 { 0 } else { 255 });
        let out = FilterKind::Sobel.apply(&img);
        // The edge column saturates; far-from-edge columns are zero.
        assert_eq!(out.get(3, 4), 255);
        assert_eq!(out.get(4, 4), 255);
        assert_eq!(out.get(0, 4), 0);
        assert_eq!(out.get(7, 4), 0);
    }

    #[test]
    fn median_removes_salt_and_pepper_speck() {
        let mut img = Image::constant(9, 9, 100);
        img.set(4, 4, 255); // a single hot pixel
        let out = FilterKind::Median.apply(&img);
        assert_eq!(out.get(4, 4), 100);
    }

    #[test]
    fn erosion_dilation_order() {
        let img = Image::random(32, 32, 7);
        let eroded = FilterKind::Erosion.apply(&img);
        let dilated = FilterKind::Dilation.apply(&img);
        for (e, d) in eroded.pixels().iter().zip(dilated.pixels()) {
            assert!(e <= d);
        }
    }

    #[test]
    fn laplacian_zero_on_linear_ramp_interior() {
        let img = Image::from_fn(16, 16, |x, _| (x * 10) as u8);
        let out = FilterKind::Laplacian.apply(&img);
        // Interior of a linear ramp has zero second derivative.
        for y in 1..15 {
            for x in 1..15 {
                assert_eq!(out.get(x, y), 0, "at ({x},{y})");
            }
        }
    }

    #[test]
    fn threshold_is_binary() {
        let img = Image::random(16, 16, 3);
        let out = FilterKind::Threshold.apply(&img);
        assert!(out.pixels().iter().all(|&p| p == 0 || p == 255));
    }

    #[test]
    fn parallel_matches_sequential_for_all_kernels() {
        let img = Image::random(33, 41, 11); // odd sizes stress banding
        for kind in FilterKind::ALL {
            let seq = kind.apply(&img);
            for threads in [1, 2, 3, 8] {
                let par = kind.apply_parallel(&img, threads);
                assert_eq!(seq, par, "{kind:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn module_name_roundtrip() {
        for kind in FilterKind::ALL {
            assert_eq!(FilterKind::from_module_name(kind.module_name()), Some(kind));
        }
        assert_eq!(FilterKind::from_module_name("FFT"), None);
    }
}
