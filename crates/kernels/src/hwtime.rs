//! Hardware task-time model: how long a hardware function "call" takes on
//! the HPRC node as a function of the data it processes.
//!
//! Section 4.3: "The task time requirement was varied by changing the amount
//! of data transferred to/from and processed by the task", with the XD1's
//! I/O bandwidth quoted at 1400 MB/s and the cores running fully pipelined
//! at 200 MHz (1 pixel/clock). The paper lumps I/O and compute into a single
//! `T_task`; this module computes that lump from first principles so the
//! Figure 9 sweep can drive task time via data size, exactly like the
//! experiment.

use serde::{Deserialize, Serialize};

/// Timing model of one streaming hardware task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskTimeModel {
    /// Host↔FPGA I/O bandwidth in bytes/second (1.4 GB/s on Cray XD1).
    pub io_bytes_per_sec: f64,
    /// Core clock in Hz (200 MHz for the Table 1 filters).
    pub clock_hz: f64,
    /// Data words (bytes, for 8-bit pixels) consumed per clock when the
    /// pipeline is full.
    pub bytes_per_clock: f64,
    /// Pipeline fill latency in clocks before the first output.
    pub pipeline_latency_clocks: u32,
    /// Whether input transfer, compute, and output transfer are overlapped
    /// (streaming through FIFOs — section 4.2) or serialized
    /// (store-and-forward through the memory banks).
    pub overlapped: bool,
}

impl TaskTimeModel {
    /// The Cray XD1 model for a Table 1 filter core: 1.4 GB/s I/O, 200 MHz,
    /// 1 byte/clock, streaming FIFOs (overlapped I/O and compute).
    pub fn xd1_filter() -> TaskTimeModel {
        TaskTimeModel {
            io_bytes_per_sec: 1.4e9,
            clock_hz: 200e6,
            bytes_per_clock: 1.0,
            pipeline_latency_clocks: 1024,
            overlapped: true,
        }
    }

    /// Compute-side time for `bytes` of data, seconds.
    pub fn compute_time_s(&self, bytes: u64) -> f64 {
        (bytes as f64 / self.bytes_per_clock + self.pipeline_latency_clocks as f64) / self.clock_hz
    }

    /// One-way transfer time for `bytes`, seconds.
    pub fn io_time_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.io_bytes_per_sec
    }

    /// Total task time `T_task` for a call that reads `bytes_in`, processes
    /// them, and writes `bytes_out`.
    ///
    /// Overlapped (streaming) mode: the pipeline is rate-limited by the
    /// slowest stage, so `T ≈ max(in, compute, out) + fill`. Serialized
    /// mode: the three phases add up.
    pub fn task_time_s(&self, bytes_in: u64, bytes_out: u64) -> f64 {
        let t_in = self.io_time_s(bytes_in);
        let t_out = self.io_time_s(bytes_out);
        if self.overlapped {
            // Streaming: every stage processes concurrently at its own rate;
            // the pipeline drains at the slowest stage, plus one fill.
            let t_stream = bytes_in as f64 / (self.clock_hz * self.bytes_per_clock);
            let fill = self.pipeline_latency_clocks as f64 / self.clock_hz;
            t_in.max(t_stream).max(t_out) + fill
        } else {
            t_in + self.compute_time_s(bytes_in) + t_out
        }
    }

    /// Inverse of [`TaskTimeModel::task_time_s`] for the symmetric
    /// (`bytes_in == bytes_out`) streaming case: the number of bytes a task
    /// must process so that its time equals `t_task` seconds. Used by the
    /// Figure 9 sweep to translate a target `X_task` into a workload size.
    pub fn bytes_for_task_time(&self, t_task: f64) -> u64 {
        let fill = self.pipeline_latency_clocks as f64 / self.clock_hz;
        let effective = (t_task - if self.overlapped { fill } else { 0.0 }).max(0.0);
        // Rate-limited by the slowest of I/O (each direction at io rate) and
        // compute.
        let bottleneck = if self.overlapped {
            self.io_bytes_per_sec
                .min(self.clock_hz * self.bytes_per_clock)
        } else {
            // Serialized: t = 2*b/io + b/(clk*bpc).
            let per_byte =
                2.0 / self.io_bytes_per_sec + 1.0 / (self.clock_hz * self.bytes_per_clock);
            return (effective / per_byte) as u64;
        };
        (effective * bottleneck) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xd1_filter_is_compute_bound() {
        // 200 MB/s compute < 1400 MB/s I/O, so compute is the bottleneck.
        let m = TaskTimeModel::xd1_filter();
        let bytes = 10_000_000u64;
        let t = m.task_time_s(bytes, bytes);
        let t_compute = m.compute_time_s(bytes);
        assert!((t - t_compute).abs() / t_compute < 1e-6);
    }

    #[test]
    fn serialized_mode_adds_phases() {
        let m = TaskTimeModel {
            overlapped: false,
            pipeline_latency_clocks: 0,
            ..TaskTimeModel::xd1_filter()
        };
        let bytes = 1_400_000u64;
        let t = m.task_time_s(bytes, bytes);
        // 1 ms in + 7 ms compute + 1 ms out.
        assert!((t - 0.009).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn bytes_for_task_time_inverts_task_time() {
        let m = TaskTimeModel::xd1_filter();
        for &target in &[0.001f64, 0.01, 0.1, 1.0] {
            let bytes = m.bytes_for_task_time(target);
            let t = m.task_time_s(bytes, bytes);
            assert!(
                (t - target).abs() / target < 0.01,
                "target {target}: bytes {bytes} -> t {t}"
            );
        }
    }

    #[test]
    fn bytes_for_task_time_inverts_serialized_too() {
        let m = TaskTimeModel {
            overlapped: false,
            pipeline_latency_clocks: 0,
            ..TaskTimeModel::xd1_filter()
        };
        let bytes = m.bytes_for_task_time(0.05);
        let t = m.task_time_s(bytes, bytes);
        assert!((t - 0.05).abs() / 0.05 < 0.01, "t = {t}");
    }

    #[test]
    fn tiny_target_times_yield_zero_bytes() {
        let m = TaskTimeModel::xd1_filter();
        // Below the pipeline fill time nothing can be processed.
        assert_eq!(m.bytes_for_task_time(1e-9), 0);
    }

    #[test]
    fn table2_context_full_config_vs_data_intensive_tasks() {
        // Paper section 5: with the estimated 36 ms full configuration,
        // "most of the data-intensive tasks require larger execution time
        // given the I/O bandwidth, i.e. 1400 MB/s" — a 16 MB (memory-bank
        // sized) streaming task takes 80 ms > 36 ms.
        let m = TaskTimeModel::xd1_filter();
        let t = m.task_time_s(16 << 20, 16 << 20);
        assert!(t > 0.036, "t = {t}");
    }
}
