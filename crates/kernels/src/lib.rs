//! # hprc-kernels
//!
//! Workload substrate: functional software models of the paper's hardware
//! image-processing functions (Table 1's median, Sobel, and smoothing
//! filters, plus extension cores), multi-stage pipelines that generate the
//! task-call traces of section 3.1, and the hardware task-time model that
//! maps data size to `T_task` (200 MHz pipelined cores, 1.4 GB/s I/O).
//!
//! Each filter has a sequential and a crossbeam-parallel execution path
//! with bit-identical results, so the reproduction's "hardware functions"
//! are real computations whose outputs can be verified, not opaque delays.
//!
//! ```
//! use hprc_kernels::{FilterKind, Image};
//!
//! let noisy = Image::random(64, 64, 42);
//! let denoised = FilterKind::Median.apply_parallel(&noisy, 4);
//! assert_eq!(denoised, FilterKind::Median.apply(&noisy));
//! ```

#![warn(missing_docs)]

pub mod filter;
pub mod hwtime;
pub mod image;
pub mod pipeline;

pub use filter::FilterKind;
pub use hwtime::TaskTimeModel;
pub use image::Image;
pub use pipeline::Pipeline;
