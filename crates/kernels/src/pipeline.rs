//! Multi-stage image pipelines: sequences of filters, the workload shape
//! that motivates run-time reconfiguration (more stages than PRRs means the
//! FPGA must swap cores mid-application).

use serde::{Deserialize, Serialize};

use crate::filter::FilterKind;
use crate::image::Image;

/// A linear pipeline of filters applied in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Stages in execution order.
    pub stages: Vec<FilterKind>,
}

impl Pipeline {
    /// Builds a pipeline.
    pub fn new(stages: Vec<FilterKind>) -> Pipeline {
        Pipeline { stages }
    }

    /// The classic denoise→smooth→edge-detect chain from the paper's
    /// domain: median, smoothing, Sobel.
    pub fn denoise_edges() -> Pipeline {
        Pipeline::new(vec![
            FilterKind::Median,
            FilterKind::Smoothing,
            FilterKind::Sobel,
        ])
    }

    /// A longer 6-stage chain exercising the extended library: median,
    /// smoothing, Sobel, threshold, erosion, dilation (morphological
    /// cleanup of an edge map).
    pub fn segmentation() -> Pipeline {
        Pipeline::new(vec![
            FilterKind::Median,
            FilterKind::Smoothing,
            FilterKind::Sobel,
            FilterKind::Threshold,
            FilterKind::Erosion,
            FilterKind::Dilation,
        ])
    }

    /// Runs the pipeline sequentially.
    pub fn run(&self, input: &Image) -> Image {
        let mut current = input.clone();
        for stage in &self.stages {
            current = stage.apply(&current);
        }
        current
    }

    /// Runs the pipeline with each stage internally parallelized over
    /// `threads` threads. Bit-identical to [`Pipeline::run`].
    pub fn run_parallel(&self, input: &Image, threads: usize) -> Image {
        let mut current = input.clone();
        for stage in &self.stages {
            current = stage.apply_parallel(&current, threads);
        }
        current
    }

    /// The task-call trace this pipeline generates: one call per stage, by
    /// module name. Feeding this to the scheduler/simulator reproduces the
    /// "application = sequence of hardware function calls" model of
    /// section 3.1.
    pub fn call_trace(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.module_name()).collect()
    }

    /// Repeats the pipeline `iterations` times (e.g. a video loop),
    /// producing the full call trace.
    pub fn repeated_call_trace(&self, iterations: usize) -> Vec<&'static str> {
        let one = self.call_trace();
        let mut out = Vec::with_capacity(one.len() * iterations);
        for _ in 0..iterations {
            out.extend_from_slice(&one);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_all_stages() {
        let img = Image::random(32, 32, 5);
        let p = Pipeline::denoise_edges();
        let out = p.run(&img);
        // Equivalent to manual chaining.
        let manual =
            FilterKind::Sobel.apply(&FilterKind::Smoothing.apply(&FilterKind::Median.apply(&img)));
        assert_eq!(out, manual);
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let img = Image::random(25, 19, 9);
        for p in [Pipeline::denoise_edges(), Pipeline::segmentation()] {
            assert_eq!(p.run(&img), p.run_parallel(&img, 4));
        }
    }

    #[test]
    fn call_trace_names_modules() {
        let p = Pipeline::denoise_edges();
        assert_eq!(
            p.call_trace(),
            vec!["Median Filter", "Smoothing Filter", "Sobel Filter"]
        );
        assert_eq!(p.repeated_call_trace(3).len(), 9);
    }

    #[test]
    fn segmentation_output_is_binaryish() {
        // After threshold + morphology, pixels stay binary.
        let img = Image::random(24, 24, 77);
        let out = Pipeline::segmentation().run(&img);
        assert!(out.pixels().iter().all(|&p| p == 0 || p == 255));
    }
}
