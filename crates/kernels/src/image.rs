//! 8-bit grayscale images — the data the paper's image-processing cores
//! stream through the FPGA's memory banks.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// An 8-bit grayscale image in row-major order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Image {
    /// An all-zero image.
    pub fn zeros(width: usize, height: usize) -> Image {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Image {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// A constant-valued image.
    pub fn constant(width: usize, height: usize, value: u8) -> Image {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Image {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Builds an image from a function of `(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Image {
        assert!(width > 0 && height > 0, "image must be non-empty");
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// A deterministic pseudo-random image (seeded ChaCha8).
    pub fn random(width: usize, height: usize, seed: u64) -> Image {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Image::from_fn(width, height, |_, _| rng.gen())
    }

    /// Builds an image from existing row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or the image is empty.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Image {
        assert!(width > 0 && height > 0, "image must be non-empty");
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel (= byte) count.
    pub fn len_bytes(&self) -> usize {
        self.pixels.len()
    }

    /// Pixel at `(x, y)` without bounds clamping.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Pixel at signed coordinates with **edge replication** (clamp) — the
    /// border policy of the streaming hardware filters.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = value;
    }

    /// Raw row-major pixels.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// One row as a slice.
    pub fn row(&self, y: usize) -> &[u8] {
        &self.pixels[y * self.width..(y + 1) * self.width]
    }

    /// Mutable rows, split into `chunks` contiguous horizontal bands for
    /// parallel writers. Returns `(start_row, band)` pairs.
    pub fn row_bands_mut(&mut self, chunks: usize) -> Vec<(usize, &mut [u8])> {
        let rows_per_band = self.height.div_ceil(chunks.max(1));
        let width = self.width;
        self.pixels
            .chunks_mut(rows_per_band * width)
            .enumerate()
            .map(|(i, band)| (i * rows_per_band, band))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_is_row_major() {
        let img = Image::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.pixels(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(img.get(2, 1), 12);
        assert_eq!(img.row(1), &[10, 11, 12]);
    }

    #[test]
    fn clamped_access_replicates_edges() {
        let img = Image::from_fn(2, 2, |x, y| (y * 2 + x) as u8);
        assert_eq!(img.get_clamped(-1, -1), 0);
        assert_eq!(img.get_clamped(5, 0), 1);
        assert_eq!(img.get_clamped(0, 5), 2);
        assert_eq!(img.get_clamped(5, 5), 3);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Image::random(16, 16, 42);
        let b = Image::random(16, 16, 42);
        let c = Image::random(16, 16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn row_bands_cover_image_disjointly() {
        let mut img = Image::random(8, 10, 1);
        let total: usize = img.row_bands_mut(3).iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 80);
        let starts: Vec<usize> = img.row_bands_mut(3).iter().map(|(s, _)| *s).collect();
        assert_eq!(starts, vec![0, 4, 8]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_image_rejected() {
        Image::zeros(0, 5);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn pixel_count_mismatch_rejected() {
        Image::from_pixels(2, 2, vec![0; 5]);
    }
}
