//! Edge cases at the cache/fault/preemption boundary: clearing empty
//! slots, SEU strikes against checkpointed residents, and graceful
//! degradation to pure FRTR once every PRR is blacklisted.

use hprc_ctx::ExecCtx;
use hprc_fault::{FaultPlan, FaultSpec, RecoveryPolicy};
use hprc_sched::{
    simulate_faulty, simulate_preemptive, ConfigCache, PreemptCosts, RtTask, StrictPriority, TaskId,
};

fn costs() -> PreemptCosts {
    PreemptCosts {
        t_decision_s: 1e-6,
        t_control_s: 1e-6,
        t_partial_s: 1e-3,
        t_full_s: 10e-3,
        quantum_s: 2e-3,
        port_bytes_per_s: 100e6,
    }
}

#[test]
fn clear_slot_on_already_empty_slot_is_a_stable_noop() {
    let mut cache = ConfigCache::new(3);
    // Never loaded: clearing is a no-op, repeatedly, in and out of range.
    assert_eq!(cache.clear_slot(1), None);
    assert_eq!(cache.clear_slot(1), None);
    assert_eq!(cache.clear_slot(usize::MAX), None);
    // Load-clear-clear: second clear still a no-op, state fully empty.
    cache.load(1, TaskId(7));
    assert_eq!(cache.clear_slot(1), Some(TaskId(7)));
    assert_eq!(cache.clear_slot(1), None);
    assert_eq!(cache.empty_slot(), Some(0));
    assert_eq!(cache.clear(), 0);
}

#[test]
fn seu_evicts_resident_of_a_mid_preemption_job_and_resume_reconfigures() {
    // One PRR: a long background job gets checkpointed out by an urgent
    // arrival. SEUs strike every call, so by the time the background job
    // resumes, its bitstream has been evicted — the resume must charge a
    // fresh configuration (miss), then restore, then complete.
    let long = RtTask {
        task: TaskId(0),
        exec_s: 0.050,
        period_s: 10.0,
        deadline_s: 10.0,
        priority: 9,
        state_bytes: 100_000,
        frames: 1,
        phase_s: 0.0,
    };
    let urgent = RtTask {
        task: TaskId(1),
        exec_s: 0.004,
        period_s: 10.0,
        deadline_s: 10.0,
        priority: 0,
        state_bytes: 100_000,
        frames: 1,
        phase_s: 0.005,
    };
    let spec = FaultSpec {
        p_seu: 1.0,
        ..FaultSpec::default()
    };
    let plan = FaultPlan::new(spec, RecoveryPolicy::default(), 5);
    let out = simulate_preemptive(
        &[long, urgent],
        1,
        &mut StrictPriority::new(),
        &costs(),
        &plan,
        &ExecCtx::default(),
    );
    assert_eq!(out.stats.completed, 2, "{:?}", out.stats);
    assert!(out.stats.preemptions >= 1);
    assert!(out.stats.seu_invalidations >= 1);
    // Every resumed segment had to reconfigure: the SEU wiped residency
    // while the job sat checkpointed.
    let resumed: Vec<_> = out.segments.iter().filter(|s| s.resumed).collect();
    assert!(!resumed.is_empty());
    for seg in &resumed {
        assert!(!seg.hit, "SEU-evicted resident must not hit");
        assert!(seg.config.is_some(), "resume reconfigures after eviction");
        assert!(seg.restore.is_some(), "resume restores the checkpoint");
    }
}

#[test]
fn all_prrs_blacklisted_degrades_to_frtr_without_panicking() {
    // Certain partial-path faults escalate every call; blacklist_after=1
    // blacklists a PRR on its first escalation. With every PRR
    // blacklisted, both engines must keep going on the forced-full
    // (FRTR) path rather than panic.
    let spec = FaultSpec {
        p_crc: 1.0,
        ..FaultSpec::default()
    };
    let policy = RecoveryPolicy {
        blacklist_after: 1,
        ..RecoveryPolicy::default()
    };
    let plan = FaultPlan::new(spec, policy, 9);

    // Run-to-completion loop.
    let trace: Vec<TaskId> = (0..30).map(|i| TaskId(i % 3)).collect();
    let out = simulate_faulty(
        &trace,
        2,
        &mut hprc_sched::policies::Lru::new(),
        false,
        &plan,
        &ExecCtx::default(),
    );
    assert_eq!(out.blacklisted_slots, 2, "every PRR ends blacklisted");
    assert_eq!(out.base.stats.calls, 30);

    // Preemptible engine: same degradation, forced-full segments on the
    // conventional lane, every surviving job completes or drops cleanly.
    let tasks = [
        RtTask {
            task: TaskId(0),
            exec_s: 0.004,
            period_s: 0.05,
            deadline_s: 0.05,
            priority: 0,
            state_bytes: 50_000,
            frames: 10,
            phase_s: 0.0,
        },
        RtTask {
            task: TaskId(1),
            exec_s: 0.004,
            period_s: 0.05,
            deadline_s: 0.05,
            priority: 1,
            state_bytes: 50_000,
            frames: 10,
            phase_s: 0.01,
        },
    ];
    let out = simulate_preemptive(
        &tasks,
        2,
        &mut StrictPriority::new(),
        &costs(),
        &plan,
        &ExecCtx::default(),
    );
    assert_eq!(
        out.stats.completed + out.stats.dropped,
        out.stats.jobs,
        "{:?}",
        out.stats
    );
    assert!(
        out.stats.forced_full > 0,
        "blacklisted device must force full reconfigurations: {:?}",
        out.stats
    );
    // Once everything is blacklisted, forced-full dispatches all use the
    // conventional lane (slot 0).
    let forced: Vec<_> = out.segments.iter().filter(|s| s.forced_full).collect();
    assert!(!forced.is_empty());
    assert!(forced.iter().all(|s| !s.hit));
}
