//! Property-based tests of the caching/prefetching substrate.

use hprc_ctx::ExecCtx;
use hprc_sched::policies::{AlwaysMiss, Belady, Fifo, Lfu, Lru, Markov, RandomPolicy};
use hprc_sched::simulate::simulate;
use hprc_sched::traces::TraceSpec;
use hprc_sched::{Policy, TaskId};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<TaskId>> {
    (2usize..8, 10usize..200, any::<u64>())
        .prop_map(|(n_tasks, len, seed)| TraceSpec::Uniform { n_tasks, len }.generate(seed))
}

fn all_policies(seed: u64) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(AlwaysMiss::new()),
        Box::new(Fifo::new()),
        Box::new(Lru::new()),
        Box::new(Lfu::new()),
        Box::new(RandomPolicy::new(seed)),
        Box::new(Belady::new()),
        Box::new(Markov::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accounting identity: hits + misses == calls, for every policy, with
    /// and without prefetching.
    #[test]
    fn accounting_identity(trace in arb_trace(), slots in 1usize..5, seed in any::<u64>()) {
        for mut policy in all_policies(seed) {
            for prefetch in [false, true] {
                let out = simulate(&trace, slots, policy.as_mut(), prefetch, &ExecCtx::default());
                prop_assert_eq!(out.stats.calls, trace.len() as u64);
                prop_assert_eq!(out.stats.hits + out.stats.misses, out.stats.calls);
                prop_assert!(out.stats.useful_prefetches <= out.stats.prefetch_loads);
                let h = out.hit_ratio();
                prop_assert!((0.0..=1.0).contains(&h));
            }
        }
    }

    /// Belady (demand-only) achieves at least as many hits as every other
    /// demand-only policy — the classic optimality result.
    #[test]
    fn belady_dominates_demand_policies(trace in arb_trace(), slots in 1usize..5, seed in any::<u64>()) {
        let opt = simulate(&trace, slots, &mut Belady::new(), false, &ExecCtx::default());
        for mut policy in [
            Box::new(Fifo::new()) as Box<dyn Policy>,
            Box::new(Lru::new()),
            Box::new(Lfu::new()),
            Box::new(RandomPolicy::new(seed)),
            Box::new(AlwaysMiss::new()),
        ] {
            let out = simulate(&trace, slots, policy.as_mut(), false, &ExecCtx::default());
            prop_assert!(
                opt.stats.hits >= out.stats.hits,
                "belady {} < {} {}",
                opt.stats.hits,
                policy.name(),
                out.stats.hits
            );
        }
    }

    /// With as many slots as distinct tasks, every demand policy converges
    /// to cold-misses-only (one miss per distinct task).
    #[test]
    fn full_capacity_means_cold_misses_only(
        (n_tasks, len, seed) in (2usize..6, 20usize..100, any::<u64>()),
    ) {
        let trace = TraceSpec::Uniform { n_tasks, len }.generate(seed);
        let distinct: std::collections::HashSet<_> = trace.iter().collect();
        for mut policy in [
            Box::new(Fifo::new()) as Box<dyn Policy>,
            Box::new(Lru::new()),
            Box::new(Lfu::new()),
            Box::new(Belady::new()),
        ] {
            let out = simulate(&trace, n_tasks, policy.as_mut(), false, &ExecCtx::default());
            prop_assert_eq!(
                out.stats.misses,
                distinct.len() as u64,
                "policy {}",
                policy.name()
            );
        }
    }

    /// AlwaysMiss charges every call as a miss: H == 0 regardless of trace.
    #[test]
    fn always_miss_is_h_zero(trace in arb_trace(), slots in 1usize..5) {
        let out = simulate(&trace, slots, &mut AlwaysMiss::new(), false, &ExecCtx::default());
        prop_assert_eq!(out.stats.hits, 0u64);
        prop_assert_eq!(out.hit_ratio(), 0.0);
    }

    /// Prefetching never reduces the hit count for the Markov policy (its
    /// replacement is LRU either way, and speculative loads only add
    /// residents that demand loads would also bring in... verified
    /// empirically: H_prefetch >= H_demand - small slack for pathological
    /// evictions).
    #[test]
    fn markov_prefetch_usually_helps_looping_traces(
        stages in 3usize..6,
        seed in any::<u64>(),
    ) {
        let trace = TraceSpec::Looping { stages, n_tasks: stages, noise: 0.0, len: 60 * stages }
            .generate(seed);
        let plain = simulate(&trace, 2, &mut Lru::new(), false, &ExecCtx::default());
        let pf = simulate(&trace, 2, &mut Markov::new(), true, &ExecCtx::default());
        prop_assert!(pf.stats.hits >= plain.stats.hits);
    }

    /// Trace generators are deterministic per (spec, seed).
    #[test]
    fn generators_deterministic(seed in any::<u64>()) {
        let specs = [
            TraceSpec::Uniform { n_tasks: 4, len: 64 },
            TraceSpec::Zipf { n_tasks: 6, alpha: 1.2, len: 64 },
            TraceSpec::Phased { n_tasks: 10, working_set: 3, phase_len: 16, len: 64 },
            TraceSpec::Looping { stages: 3, n_tasks: 5, noise: 0.2, len: 64 },
        ];
        for spec in specs {
            prop_assert_eq!(spec.generate(seed), spec.generate(seed));
        }
    }
}
