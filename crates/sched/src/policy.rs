//! The replacement/prefetch policy abstraction.
//!
//! A policy answers two questions the configuration-caching literature the
//! paper builds on ([24]–[27]) cares about: *which* resident configuration
//! to evict on a miss, and *what* to prefetch while the current task runs.
//! Each policy also carries its decision latency — the paper's `T_decision`
//! (`T_setup`), "the time taken by the configuration caching algorithm to
//! decide whether to configure or not to configure certain tasks".
//!
//! The preemptible engine ([`crate::preempt`]) generalizes the same trait
//! with two defaulted hooks: a dispatch-order ranking over released jobs
//! ([`Policy::ranks_above`]) and an opt-in to suspend running tasks at
//! PR-safe points ([`Policy::preemptive`]). Every classic replacement
//! policy keeps the defaults and behaves exactly as before — a FIFO,
//! run-to-completion dispatcher.

use crate::cache::{ConfigCache, TaskId};

/// The engine-facing view of one released job, used by the dispatch
/// ranking of the preemptible scheduler: enough for strict-priority
/// (static `priority`) and EDF (absolute `deadline_ns`) orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobView {
    /// The task this job is an instance (frame) of.
    pub task: TaskId,
    /// Static priority; lower numbers are more urgent.
    pub priority: u32,
    /// Absolute deadline on the simulation clock, nanoseconds.
    pub deadline_ns: u64,
    /// Release instant on the simulation clock, nanoseconds.
    pub release_ns: u64,
}

/// A configuration replacement + prefetch policy.
pub trait Policy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decision latency `T_decision` in seconds (0 for trivial policies).
    fn decision_latency_s(&self) -> f64 {
        0.0
    }

    /// Gives oracle policies the full future trace before simulation.
    fn observe_trace(&mut self, _trace: &[TaskId]) {}

    /// Chooses the slot to evict so `task` can be loaded at call `index`.
    /// Only called when the cache has no empty slot.
    fn choose_victim(&mut self, cache: &ConfigCache, task: TaskId, index: usize) -> usize;

    /// Records that `task` was accessed (hit or post-miss load) in `slot`
    /// at call `index`.
    fn on_access(&mut self, task: TaskId, slot: usize, index: usize);

    /// Records that `slot` was refilled with `task`'s configuration (demand
    /// miss or prefetch). Policies that track load order (FIFO) hook this.
    fn on_load(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    /// Predicts the task most likely to be called next, as a prefetch hint.
    fn predict_next(&self, _current: TaskId) -> Option<TaskId> {
        None
    }

    /// When true, every call is charged as a miss regardless of residency —
    /// the paper's experimental configuration ("our hypothetical
    /// configuration pre-fetching always misses tasks when needed and
    /// always reconfigures the called tasks", section 4.3).
    fn forces_miss(&self) -> bool {
        false
    }

    /// Dispatch-order ranking for the preemptible engine: `true` when
    /// job `a` should run in preference to job `b` — and, when
    /// [`preemptive`](Policy::preemptive) allows it, may checkpoint a
    /// running `b` out of its PRR. Must be a *strict* ordering (`false`
    /// on ties); the engine breaks ties deterministically by release
    /// time, task id, and frame. The default never reorders, which
    /// turns the engine into a FIFO run-to-completion dispatcher.
    fn ranks_above(&self, a: &JobView, b: &JobView) -> bool {
        let _ = (a, b);
        false
    }

    /// Whether the preemptible engine may suspend this policy's running
    /// jobs at PR-safe points (checkpoint the PRR's live context,
    /// reclaim the region, restore later). Run-to-completion policies
    /// keep the default.
    fn preemptive(&self) -> bool {
        false
    }

    /// A canonical byte encoding of the policy's mutable decision state
    /// for the delta-simulation layer, or `None` to opt out of
    /// memoization entirely (the default — a policy the skeleton cache
    /// does not know how to snapshot is simply never memoized).
    ///
    /// Two requirements: (a) the encoding is *canonical* — equal
    /// decision state encodes to equal bytes, independent of insertion
    /// order or process — because it lands in skeleton cache keys; and
    /// (b) [`delta_restore`](Policy::delta_restore) of the bytes
    /// reproduces a policy whose every future decision matches the
    /// encoded one. State rebuilt by [`observe_trace`]
    /// (Policy::observe_trace) (oracle futures) is excluded: the
    /// restore path always replays `observe_trace` first.
    fn delta_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores mutable decision state captured by
    /// [`delta_state`](Policy::delta_state); returns `false` (leaving
    /// the policy in an unspecified but safe state) if the bytes are
    /// not recognized, in which case the caller must fall back to a
    /// from-scratch simulation. Called *after* `observe_trace`.
    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let _ = state;
        false
    }

    /// Whether a memoized decision prefix of this policy remains valid
    /// when the *future* of the trace changes. True for every causal
    /// policy (decisions depend only on the past); **false** for
    /// clairvoyant ones like Belady, whose victim choices consult
    /// future occurrences — their skeletons may only be reused when
    /// the entire trace matches.
    fn delta_prefix_safe(&self) -> bool {
        true
    }
}
