//! The replacement/prefetch policy abstraction.
//!
//! A policy answers two questions the configuration-caching literature the
//! paper builds on ([24]–[27]) cares about: *which* resident configuration
//! to evict on a miss, and *what* to prefetch while the current task runs.
//! Each policy also carries its decision latency — the paper's `T_decision`
//! (`T_setup`), "the time taken by the configuration caching algorithm to
//! decide whether to configure or not to configure certain tasks".

use crate::cache::{ConfigCache, TaskId};

/// A configuration replacement + prefetch policy.
pub trait Policy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decision latency `T_decision` in seconds (0 for trivial policies).
    fn decision_latency_s(&self) -> f64 {
        0.0
    }

    /// Gives oracle policies the full future trace before simulation.
    fn observe_trace(&mut self, _trace: &[TaskId]) {}

    /// Chooses the slot to evict so `task` can be loaded at call `index`.
    /// Only called when the cache has no empty slot.
    fn choose_victim(&mut self, cache: &ConfigCache, task: TaskId, index: usize) -> usize;

    /// Records that `task` was accessed (hit or post-miss load) in `slot`
    /// at call `index`.
    fn on_access(&mut self, task: TaskId, slot: usize, index: usize);

    /// Records that `slot` was refilled with `task`'s configuration (demand
    /// miss or prefetch). Policies that track load order (FIFO) hook this.
    fn on_load(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    /// Predicts the task most likely to be called next, as a prefetch hint.
    fn predict_next(&self, _current: TaskId) -> Option<TaskId> {
        None
    }

    /// When true, every call is charged as a miss regardless of residency —
    /// the paper's experimental configuration ("our hypothetical
    /// configuration pre-fetching always misses tasks when needed and
    /// always reconfigures the called tasks", section 4.3).
    fn forces_miss(&self) -> bool {
        false
    }
}
