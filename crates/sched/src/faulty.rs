//! Fault-aware cache simulation: [`simulate`](crate::simulate::simulate)
//! extended with the `hprc-fault` recovery state machine.
//!
//! Three things distinguish a faulty run from a clean one:
//!
//! 1. **Escalations wipe the cache.** A partial chain that exhausts its
//!    retries escalates to a full reconfiguration, and a full bitstream
//!    overwrites the whole device — every resident partial configuration
//!    is gone, so subsequent calls that would have hit now miss. `H`
//!    degrades *honestly* instead of the cache pretending the device
//!    still holds what the fault destroyed.
//! 2. **Blacklisting shrinks the device.** A PRR that escalates
//!    `blacklist_after` times is retired; demand loads and prefetches
//!    redirect to the remaining usable slots, and once every slot is
//!    gone the system degrades to pure FRTR (every call a forced-full
//!    miss) without panicking.
//! 3. **SEUs silently corrupt residents.** After each call, a seeded
//!    upset draw may strike any occupied slot; the occupant is evicted
//!    (the next call for it becomes a miss), modelling the silent
//!    corruption + readback-detection cycle.
//!
//! The scheduler and the simulator each run their own
//! [`FaultState`](hprc_fault::FaultState) over the identical
//! `(call, slot, miss)` stream, so fates never need to be passed
//! between the two layers — they re-derive identically.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use hprc_fault::{CallFate, FaultPlan, FaultState};

use crate::cache::{CacheStats, ConfigCache, TaskId};
use crate::policy::Policy;
use crate::simulate::{record_outcome, simulate, CallOutcome, SimulationOutcome};

/// Result of one fault-injecting cache simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyOutcome {
    /// The underlying hit/miss outcome stream (what the executors
    /// consume), with fault-induced misses already folded in.
    pub base: SimulationOutcome,
    /// Per-call fates, in trace order — hits carry a clean fate.
    pub fates: Vec<CallFate>,
    /// Resident configurations evicted by SEU strikes.
    pub seu_invalidations: u64,
    /// Full-device wipes caused by escalated or forced-full chains.
    pub escalation_wipes: u64,
    /// PRRs blacklisted by the end of the run.
    pub blacklisted_slots: usize,
    /// Calls whose recovery chain exhausted every attempt.
    pub dropped: u64,
}

impl FaultyOutcome {
    /// The measured hit ratio `H` under faults.
    pub fn hit_ratio(&self) -> f64 {
        self.base.hit_ratio()
    }

    /// Availability: the fraction of calls that were *not* dropped.
    pub fn availability(&self) -> f64 {
        if self.base.stats.calls == 0 {
            1.0
        } else {
            1.0 - self.dropped as f64 / self.base.stats.calls as f64
        }
    }
}

fn first_empty_usable(cache: &ConfigCache, state: &FaultState) -> Option<usize> {
    (0..cache.slot_count()).find(|&s| cache.occupant(s).is_none() && !state.is_blacklisted(s))
}

fn first_usable(state: &FaultState, slots: usize) -> usize {
    (0..slots).find(|&s| !state.is_blacklisted(s)).unwrap_or(0)
}

/// The resumable core of a fault-injecting simulation — the faulty
/// sibling of [`CleanSim`](crate::simulate::CleanSim). The delta layer
/// snapshots and restores it mid-trace (swapping in the sweep point's
/// own plan via [`FaultState::set_plan`]); the plain path drives it
/// start to finish.
pub(crate) struct FaultySim {
    pub(crate) slots: usize,
    pub(crate) state: FaultState,
    pub(crate) cache: ConfigCache,
    pub(crate) stats: CacheStats,
    pub(crate) outcomes: Vec<CallOutcome>,
    pub(crate) fates: Vec<CallFate>,
    pub(crate) speculative: HashSet<TaskId>,
    pub(crate) seu_invalidations: u64,
    pub(crate) escalation_wipes: u64,
    pub(crate) dropped: u64,
}

impl FaultySim {
    pub(crate) fn new(plan: FaultPlan, slots: usize) -> Self {
        FaultySim {
            slots,
            state: FaultState::new(plan, slots),
            cache: ConfigCache::new(slots),
            stats: CacheStats::default(),
            outcomes: Vec::new(),
            fates: Vec::new(),
            speculative: HashSet::new(),
            seu_invalidations: 0,
            escalation_wipes: 0,
            dropped: 0,
        }
    }

    /// Processes call `i` of the trace (task `task`).
    pub(crate) fn step(&mut self, i: usize, task: TaskId, policy: &mut dyn Policy, prefetch: bool) {
        let slots = self.slots;
        self.stats.calls += 1;
        let resident_slot = self.cache.slot_of(task);
        let (outcome, fate) = match resident_slot {
            Some(slot) if !policy.forces_miss() => {
                self.stats.hits += 1;
                if self.speculative.remove(&task) {
                    self.stats.useful_prefetches += 1;
                }
                (CallOutcome::Hit { slot }, CallFate::clean_partial())
            }
            _ => {
                self.stats.misses += 1;
                self.speculative.remove(&task);
                // Demand slot choice, redirected away from retired PRRs.
                // With every PRR blacklisted the chain is forced full;
                // slot 0 is the conventional (unusable) target, and the
                // simulator's own FaultState derives the same fate from
                // it.
                let slot = if self.state.all_blacklisted() {
                    0
                } else {
                    let chosen = resident_slot
                        .or_else(|| first_empty_usable(&self.cache, &self.state))
                        .unwrap_or_else(|| policy.choose_victim(&self.cache, task, i));
                    if self.state.is_blacklisted(chosen) {
                        first_usable(&self.state, slots)
                    } else {
                        chosen
                    }
                };
                let fate = self.state.on_miss(i as u64, slot);
                let mut evicted = None;
                if fate.escalated || fate.forced_full {
                    // The full bitstream overwrote the whole device.
                    self.cache.clear();
                    self.speculative.clear();
                    self.escalation_wipes += 1;
                    if fate.dropped {
                        self.dropped += 1;
                    } else if !self.state.is_blacklisted(slot) {
                        self.cache.load(slot, task);
                        policy.on_load(task, slot, i);
                    }
                } else {
                    evicted = self.cache.load(slot, task);
                    if let Some(e) = evicted {
                        self.speculative.remove(&e);
                    }
                    policy.on_load(task, slot, i);
                }
                (
                    CallOutcome::Miss {
                        slot,
                        evicted: evicted.filter(|&e| e != task),
                    },
                    fate,
                )
            }
        };
        let slot = match outcome {
            CallOutcome::Hit { slot } | CallOutcome::Miss { slot, .. } => slot,
        };
        policy.on_access(task, slot, i);
        self.outcomes.push(outcome);
        self.fates.push(fate);

        // SEU sweep: seeded upsets silently corrupt resident slots; the
        // eviction is how the (detected-on-next-use) corruption becomes
        // a forced miss downstream.
        for s in 0..slots {
            if self.cache.occupant(s).is_some() && self.state.seu_strikes(i as u64, s) {
                if let Some(e) = self.cache.clear_slot(s) {
                    self.speculative.remove(&e);
                }
                self.seu_invalidations += 1;
            }
        }

        if prefetch && !self.state.all_blacklisted() {
            if let Some(pred) = policy.predict_next(task) {
                if pred != task && !self.cache.contains(pred) {
                    let target = first_empty_usable(&self.cache, &self.state)
                        .unwrap_or_else(|| policy.choose_victim(&self.cache, pred, i));
                    let target = if self.state.is_blacklisted(target) {
                        first_usable(&self.state, slots)
                    } else {
                        target
                    };
                    // Never evict the task that is executing right now.
                    if Some(target) != self.cache.slot_of(task) {
                        if let Some(e) = self.cache.load(target, pred) {
                            self.speculative.remove(&e);
                        }
                        policy.on_load(pred, target, i);
                        self.stats.prefetch_loads += 1;
                        self.speculative.insert(pred);
                    }
                }
            }
        }
    }

    pub(crate) fn finish(self) -> FaultyOutcome {
        FaultyOutcome {
            base: SimulationOutcome {
                stats: self.stats,
                outcomes: self.outcomes,
            },
            fates: self.fates,
            seu_invalidations: self.seu_invalidations,
            escalation_wipes: self.escalation_wipes,
            blacklisted_slots: self.state.blacklisted_slots(),
            dropped: self.dropped,
        }
    }
}

pub(crate) fn simulate_faulty_inner(
    trace: &[TaskId],
    slots: usize,
    policy: &mut dyn Policy,
    prefetch: bool,
    plan: &FaultPlan,
) -> FaultyOutcome {
    let mut sim = FaultySim::new(*plan, slots);
    sim.outcomes.reserve(trace.len());
    sim.fates.reserve(trace.len());
    policy.observe_trace(trace);
    for (i, &task) in trace.iter().enumerate() {
        sim.step(i, task, policy, prefetch);
    }
    sim.finish()
}

/// Runs `trace` through a cache of `slots` PRRs under `policy` with the
/// fault plan armed. A disarmed (or all-zero) plan delegates to
/// [`simulate`] and is observably identical to it — same outcome, same
/// metrics, all fates clean.
///
/// Beyond [`simulate`]'s per-policy instruments, an armed run records:
///
/// * counters `sched.fault.seu_invalidations` / `.escalation_wipes` /
///   `.dropped`;
/// * gauge `sched.fault.blacklisted_slots`.
///
/// # Panics
///
/// Panics when `slots == 0` (as [`simulate`] does); everything the
/// fault machinery adds is panic-free, including full blacklisting.
pub fn simulate_faulty(
    trace: &[TaskId],
    slots: usize,
    policy: &mut dyn Policy,
    prefetch: bool,
    plan: &FaultPlan,
    ctx: &hprc_ctx::ExecCtx,
) -> FaultyOutcome {
    if !plan.armed() {
        let base = simulate(trace, slots, policy, prefetch, ctx);
        let fates = vec![CallFate::clean_partial(); base.outcomes.len()];
        return FaultyOutcome {
            base,
            fates,
            seu_invalidations: 0,
            escalation_wipes: 0,
            blacklisted_slots: 0,
            dropped: 0,
        };
    }

    let registry = &ctx.registry;
    let _span = registry.span("sched.simulate_faulty");
    let j = &ctx.journal;
    let js = j.enter("sched.simulate_faulty", 0, 0);

    // Budget hook, mirroring `simulate`: one charged event per call,
    // deterministic truncation of the refused tail.
    let admitted = ctx.budget.admit(trace.len());
    let trace = &trace[..admitted];

    // Delta path: memoized skeletons replay shared prefixes of earlier
    // runs (with the first plan disagreement bounding the replay). All
    // recording below derives from the outcome alone, so the swap is
    // invisible to every artifact — including instrumented runs.
    let out = if ctx.delta.is_enabled() {
        crate::delta::simulate_faulty_delta(trace, slots, policy, prefetch, plan, &ctx.delta)
    } else {
        simulate_faulty_inner(trace, slots, policy, prefetch, plan)
    };

    record_outcome(registry, policy.name(), &out.base);
    if registry.is_enabled() {
        registry
            .counter("sched.fault.seu_invalidations")
            .add(out.seu_invalidations);
        registry
            .counter("sched.fault.escalation_wipes")
            .add(out.escalation_wipes);
        registry.counter("sched.fault.dropped").add(out.dropped);
        registry
            .gauge("sched.fault.blacklisted_slots")
            .set(out.blacklisted_slots as f64);
    }
    j.metric("sched.calls", out.base.stats.calls);
    j.metric("sched.hits", out.base.stats.hits);
    j.metric("sched.misses", out.base.stats.misses);
    j.metric("sched.fault.seu_invalidations", out.seu_invalidations);
    j.metric("sched.fault.escalation_wipes", out.escalation_wipes);
    j.metric("sched.fault.dropped", out.dropped);
    j.exit(js, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{Lru, Markov};
    use hprc_fault::{FaultSpec, RecoveryPolicy};

    fn ids(v: &[usize]) -> Vec<TaskId> {
        v.iter().map(|&i| TaskId(i)).collect()
    }

    fn dctx() -> hprc_ctx::ExecCtx {
        hprc_ctx::ExecCtx::default()
    }

    fn plan(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan::new(FaultSpec::uniform(rate), RecoveryPolicy::default(), seed)
    }

    #[test]
    fn disarmed_plan_is_identical_to_simulate_including_metrics() {
        let trace = ids(&[0, 1, 2].repeat(30));
        let cctx = dctx().with_registry(hprc_obs::Registry::new());
        let fctx = dctx().with_registry(hprc_obs::Registry::new());
        let clean = simulate(&trace, 2, &mut Markov::new(), true, &cctx);
        let faulty = simulate_faulty(
            &trace,
            2,
            &mut Markov::new(),
            true,
            &FaultPlan::disarmed(),
            &fctx,
        );
        assert_eq!(clean, faulty.base);
        assert!(faulty.fates.iter().all(|f| f.is_clean()));
        assert_eq!(faulty.dropped, 0);
        assert_eq!(faulty.blacklisted_slots, 0);
        let csnap = cctx.registry.snapshot();
        let fsnap = fctx.registry.snapshot();
        assert_eq!(csnap.counters, fsnap.counters);
        assert_eq!(csnap.gauges, fsnap.gauges);
    }

    #[test]
    fn seu_strikes_evict_residents_and_cost_hits() {
        // SEU-only faults: the partial chains themselves never fail, so
        // every lost hit is a silent upset eviction.
        let spec = FaultSpec {
            p_seu: 0.3,
            ..FaultSpec::default()
        };
        let p = FaultPlan::new(spec, RecoveryPolicy::default(), 7);
        let trace = ids(&[0, 1].repeat(100));
        let clean = simulate(&trace, 2, &mut Lru::new(), false, &dctx());
        let faulty = simulate_faulty(&trace, 2, &mut Lru::new(), false, &p, &dctx());
        assert!(faulty.seu_invalidations > 0);
        assert_eq!(faulty.escalation_wipes, 0);
        assert_eq!(faulty.dropped, 0);
        assert!(
            faulty.hit_ratio() < clean.hit_ratio(),
            "H {} !< clean {}",
            faulty.hit_ratio(),
            clean.hit_ratio()
        );
        // Every upset becomes a later miss or dies unobserved; totals hold.
        let s = &faulty.base.stats;
        assert_eq!(s.hits + s.misses, s.calls);
    }

    #[test]
    fn certain_faults_blacklist_everything_and_degrade_to_frtr() {
        // Partial chains always fail (CRC), full chains always succeed:
        // each miss escalates, wipes the cache, and after
        // `blacklist_after` escalations per PRR the device is pure FRTR.
        let spec = FaultSpec {
            p_crc: 1.0,
            ..FaultSpec::default()
        };
        let p = FaultPlan::new(spec, RecoveryPolicy::default(), 3);
        let trace = ids(&[0, 1, 2].repeat(20));
        let ctx = dctx().with_registry(hprc_obs::Registry::new());
        let faulty = simulate_faulty(&trace, 2, &mut Lru::new(), false, &p, &ctx);
        assert_eq!(faulty.blacklisted_slots, 2);
        assert_eq!(faulty.dropped, 0);
        // Every call misses: escalations wipe the cache each time.
        assert_eq!(faulty.base.stats.hits, 0);
        assert_eq!(faulty.escalation_wipes, 60);
        assert!(faulty.fates.iter().all(|f| f.escalated || f.forced_full));
        // Once blacklisted, misses are forced-full (no partial attempts).
        assert!(faulty.fates.iter().skip(10).all(|f| f.forced_full));
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.gauges["sched.fault.blacklisted_slots"], 2.0);
        assert_eq!(snap.counters["sched.fault.escalation_wipes"], 60);
        assert_eq!(snap.counters["sched.lru.misses"], 60);
    }

    #[test]
    fn fully_blacklisted_device_keeps_running_with_prefetch_enabled() {
        let spec = FaultSpec {
            p_crc: 1.0,
            p_seu: 0.5,
            ..FaultSpec::default()
        };
        let p = FaultPlan::new(spec, RecoveryPolicy::default(), 11);
        let trace = ids(&[0, 1, 2, 3].repeat(25));
        let faulty = simulate_faulty(&trace, 2, &mut Markov::new(), true, &p, &dctx());
        assert_eq!(faulty.base.stats.calls, 100);
        assert_eq!(faulty.base.outcomes.len(), 100);
        assert_eq!(faulty.fates.len(), 100);
        assert_eq!(faulty.blacklisted_slots, 2);
        assert!((faulty.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drops_reduce_availability() {
        let spec = FaultSpec {
            p_crc: 1.0,
            p_api_transfer: 1.0,
            ..FaultSpec::default()
        };
        let p = FaultPlan::new(spec, RecoveryPolicy::default(), 5);
        let trace = ids(&[0, 1].repeat(10));
        let ctx = dctx().with_registry(hprc_obs::Registry::new());
        let faulty = simulate_faulty(&trace, 2, &mut Lru::new(), false, &p, &ctx);
        assert_eq!(faulty.dropped, 20);
        assert_eq!(faulty.availability(), 0.0);
        assert_eq!(ctx.registry.snapshot().counters["sched.fault.dropped"], 20);
    }

    #[test]
    fn outcomes_replay_identically() {
        let p = plan(0.2, 99);
        let trace = ids(&[0, 1, 2, 0, 2, 1].repeat(30));
        let a = simulate_faulty(&trace, 2, &mut Markov::new(), true, &p, &dctx());
        let b = simulate_faulty(&trace, 2, &mut Markov::new(), true, &p, &dctx());
        assert_eq!(a, b);
    }
}
