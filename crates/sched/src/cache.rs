//! The configuration cache: which task's configuration currently occupies
//! each PRR slot.
//!
//! "Hardware functions are grouped into hardware reconfiguration blocks
//! (pages) of fixed size, where multiple pages can be configured
//! simultaneously" (section 2.1). Here a *slot* is one PRR; a task is
//! resident when its configuration is loaded in some slot.

use serde::{Deserialize, Serialize};

/// Identifier of a hardware task (an index into the module library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// The PRR-slot cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigCache {
    slots: Vec<Option<TaskId>>,
}

impl ConfigCache {
    /// An empty cache with `slots` PRRs.
    ///
    /// # Panics
    ///
    /// Panics when `slots == 0` — a PRTR system needs at least one PRR.
    pub fn new(slots: usize) -> ConfigCache {
        assert!(slots > 0, "at least one PRR slot is required");
        ConfigCache {
            slots: vec![None; slots],
        }
    }

    /// Number of PRR slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Slot currently holding `task`, if resident.
    pub fn slot_of(&self, task: TaskId) -> Option<usize> {
        self.slots.iter().position(|s| *s == Some(task))
    }

    /// Whether `task` is resident.
    pub fn contains(&self, task: TaskId) -> bool {
        self.slot_of(task).is_some()
    }

    /// First empty slot, if any.
    pub fn empty_slot(&self) -> Option<usize> {
        self.slots.iter().position(|s| s.is_none())
    }

    /// Occupant of a slot.
    pub fn occupant(&self, slot: usize) -> Option<TaskId> {
        self.slots.get(slot).copied().flatten()
    }

    /// Loads `task` into `slot`, returning the evicted occupant (if any).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range slot or if the task is already resident in
    /// a *different* slot (a configuration cannot occupy two PRRs).
    pub fn load(&mut self, slot: usize, task: TaskId) -> Option<TaskId> {
        if let Some(existing) = self.slot_of(task) {
            assert_eq!(
                existing, slot,
                "task {task:?} already resident in slot {existing}"
            );
            return Some(task);
        }
        let evicted = self.slots[slot];
        self.slots[slot] = Some(task);
        evicted
    }

    /// Snapshot of all slots.
    pub fn slots(&self) -> &[Option<TaskId>] {
        &self.slots
    }

    /// Invalidates a single slot, returning the evicted occupant (if
    /// any). Out-of-range slots are a no-op — an SEU can "strike" a
    /// region the floorplan does not expose, and that must not panic.
    pub fn clear_slot(&mut self, slot: usize) -> Option<TaskId> {
        self.slots.get_mut(slot).and_then(|s| s.take())
    }

    /// Invalidates every slot (a full reconfiguration overwrites the
    /// whole device, taking all resident partial configurations with
    /// it), returning how many occupants were evicted.
    pub fn clear(&mut self) -> usize {
        let evicted = self.slots.iter().filter(|s| s.is_some()).count();
        self.slots.iter_mut().for_each(|s| *s = None);
        evicted
    }
}

/// Hit/miss statistics of one cache simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CacheStats {
    /// Total task calls.
    pub calls: u64,
    /// Calls that found their configuration resident.
    pub hits: u64,
    /// Calls that required a (re-)configuration.
    pub misses: u64,
    /// Configurations performed for prefetching (speculative loads).
    pub prefetch_loads: u64,
    /// Prefetch loads that were used before eviction (useful prefetches).
    pub useful_prefetches: u64,
}

impl CacheStats {
    /// The hit ratio `H = hits / calls` (zero for an empty run).
    pub fn hit_ratio(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.hits as f64 / self.calls as f64
        }
    }

    /// The miss ratio `M = 1 - H`.
    pub fn miss_ratio(&self) -> f64 {
        1.0 - self.hit_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_has_no_residents() {
        let c = ConfigCache::new(2);
        assert_eq!(c.slot_count(), 2);
        assert!(!c.contains(TaskId(0)));
        assert_eq!(c.empty_slot(), Some(0));
    }

    #[test]
    fn load_and_evict() {
        let mut c = ConfigCache::new(2);
        assert_eq!(c.load(0, TaskId(1)), None);
        assert_eq!(c.load(1, TaskId(2)), None);
        assert!(c.contains(TaskId(1)));
        assert_eq!(c.empty_slot(), None);
        // Evict slot 0.
        assert_eq!(c.load(0, TaskId(3)), Some(TaskId(1)));
        assert!(!c.contains(TaskId(1)));
        assert_eq!(c.occupant(0), Some(TaskId(3)));
    }

    #[test]
    fn reloading_resident_task_in_place_is_a_noop() {
        let mut c = ConfigCache::new(2);
        c.load(0, TaskId(5));
        assert_eq!(c.load(0, TaskId(5)), Some(TaskId(5)));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn duplicate_residency_rejected() {
        let mut c = ConfigCache::new(2);
        c.load(0, TaskId(5));
        c.load(1, TaskId(5));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_slots_rejected() {
        ConfigCache::new(0);
    }

    #[test]
    fn clear_slot_evicts_and_tolerates_out_of_range() {
        let mut c = ConfigCache::new(2);
        c.load(0, TaskId(1));
        assert_eq!(c.clear_slot(0), Some(TaskId(1)));
        assert_eq!(c.clear_slot(0), None);
        assert_eq!(c.clear_slot(99), None);
        assert!(!c.contains(TaskId(1)));
    }

    #[test]
    fn clear_wipes_everything() {
        let mut c = ConfigCache::new(3);
        c.load(0, TaskId(1));
        c.load(2, TaskId(2));
        assert_eq!(c.clear(), 2);
        assert_eq!(c.slots(), &[None, None, None]);
        assert_eq!(c.clear(), 0);
    }

    #[test]
    fn stats_ratios() {
        let s = CacheStats {
            calls: 10,
            hits: 3,
            misses: 7,
            prefetch_loads: 0,
            useful_prefetches: 0,
        };
        assert!((s.hit_ratio() - 0.3).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
