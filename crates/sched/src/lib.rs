//! # hprc-sched
//!
//! Configuration caching and pre-fetching substrate: the algorithms the
//! paper's analytical model abstracts into the hit ratio `H` and decision
//! latency `T_decision` (section 3.1, building on its references [24]-[27]).
//!
//! * [`cache`] — the PRR-slot configuration cache and hit/miss statistics;
//! * [`policy`] — the replacement/prefetch policy trait;
//! * [`policies`] — always-miss (the paper's measured setup), FIFO, LRU,
//!   LFU, random, Belady's clairvoyant optimum, and a first-order Markov
//!   prefetcher;
//! * [`simulate`] — trace-driven simulation measuring the achieved `H`;
//! * [`faulty`] — the same simulation with `hprc-fault` recovery state:
//!   escalations wipe the cache, repeated escalations blacklist PRRs,
//!   and seeded SEUs evict residents, so `H` degrades honestly;
//! * [`preempt`] — the event-driven preemptible engine: checkpoint a
//!   running task out of its PRR at PR-safe points (context readback
//!   priced like a bitstream transfer), restore it later, under
//!   strict-priority or EDF dispatch with frame deadlines;
//! * [`traces`] — seeded workload generators (uniform, Zipf, phased,
//!   looping pipelines).
//!
//! ```
//! use hprc_ctx::ExecCtx;
//! use hprc_sched::policies::Markov;
//! use hprc_sched::simulate::simulate;
//! use hprc_sched::traces::TraceSpec;
//!
//! // An image pipeline cycling 3 cores through 2 PRRs defeats plain LRU,
//! // but a next-task prefetcher hides most reconfigurations.
//! let trace = TraceSpec::Looping { stages: 3, n_tasks: 3, noise: 0.0, len: 300 }.generate(1);
//! let outcome = simulate(&trace, 2, &mut Markov::new(), true, &ExecCtx::default());
//! assert!(outcome.hit_ratio() > 0.5);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub(crate) mod delta;
pub mod faulty;
pub mod policies;
pub mod policy;
pub mod preempt;
pub mod simulate;
pub mod traces;

pub use cache::{CacheStats, ConfigCache, TaskId};
pub use faulty::{simulate_faulty, FaultyOutcome};
pub use policy::{JobView, Policy};
pub use preempt::{
    simulate_preemptive, Edf, JobRecord, PreemptCosts, PreemptOutcome, PreemptStats, RtTask,
    ScheduleSegment, StrictPriority, TaskState, Window,
};
pub use simulate::{simulate, CallOutcome, SimulationOutcome};
pub use traces::TraceSpec;
