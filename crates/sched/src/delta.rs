//! Delta re-simulation: memoized schedule skeletons with
//! first-divergence replay.
//!
//! Adjacent sweep points (H = 0.90 vs 0.95, fault rate 0.1 vs 0.2)
//! share long schedule prefixes: the policy's decisions at call `i`
//! depend only on the trace prefix `trace[..=i]` (for causal
//! policies) and — under faults — on the plan's draws up to call `i`.
//! This module caches, per completed run, a *skeleton*: the trace the
//! run was driven by, its full decision outcome, the policy's final
//! state, and periodic resume snapshots of the whole simulation state
//! keyed by call index. A later run with the same base key
//! (slots/prefetch/policy identity + initial state, and under faults
//! the recovery-policy knobs) finds the first call where its inputs
//! diverge from a memoized skeleton, replays the shared prefix as one
//! closed-form jump (clone the snapshot, copy the memoized outcome
//! prefix), and re-simulates longhand only from the divergence point.
//!
//! Divergence predicates per swept parameter:
//!
//! * **trace contents** — the first index where the two traces
//!   differ (exact elementwise scan; sharing a prefix is exactly what
//!   makes a causal policy's decisions over it identical);
//! * **fault spec / plan seed** — the first call where a draw the
//!   memoized run *actually consulted* (the attempts its fate
//!   records, plus the per-slot SEU sweep) resolves differently under
//!   the new plan. By induction, while every consulted draw agrees
//!   the two runs take the identical path, so unconsulted draws can
//!   never matter. Agreement is not monotone in the call index, so
//!   this is a linear scan, not a binary search; coupled uniforms
//!   (same seed, different rates) keep the first disagreement late
//!   for adjacent rates. The blind variant of this predicate —
//!   compare *every* reachable draw — is [`FaultPlan::agrees_at`];
//!   the executor layer uses it where no decision trace is at hand;
//! * **clairvoyance** — policies whose decisions consult the *future*
//!   ([`Policy::delta_prefix_safe`] = false, e.g. Belady) only reuse
//!   a skeleton when the entire trace matches.
//!
//! Everything the callers record (metrics, journal entries) derives
//! from the returned outcome alone, so a replay is byte-identical to
//! a from-scratch run in every artifact, at any `--jobs`, with or
//! without instrumentation.

use std::sync::Arc;

use hprc_fault::FaultPlan;
use hprc_obs::delta::bytes as dbytes;
use hprc_obs::DeltaCache;

use crate::cache::{CacheStats, ConfigCache, TaskId};
use crate::faulty::{simulate_faulty_inner, FaultyOutcome, FaultySim};
use crate::policy::Policy;
use crate::simulate::{simulate_inner, CleanSim, SimulationOutcome};

/// Snapshot cadence: a resume snapshot is captured before every
/// `SNAPSHOT_EVERY`-th call, bounding re-simulation after a replay to
/// at most this many extra calls before the divergence point.
pub(crate) const SNAPSHOT_EVERY: usize = 16;

/// Skeleton variants retained per base key. Sweeps that vary the
/// trace or the plan produce one skeleton per distinct input; the
/// retention has to cover a whole sweep's width (the fig9 panels run
/// 41 points, the prefetch grid crosses policies with trace specs) or
/// the sweep evicts its own variants before the next pass can reuse
/// them. The byte-bound LRU still caps total memory.
pub(crate) const MAX_VARIANTS: usize = 32;

/// Index of the first element where `a` and `b` differ (`min(len)`
/// when one is a prefix of the other).
fn first_mismatch(a: &[TaskId], b: &[TaskId]) -> usize {
    let n = a.len().min(b.len());
    (0..n).find(|&i| a[i] != b[i]).unwrap_or(n)
}

fn sorted_tasks(s: &std::collections::HashSet<TaskId>) -> Vec<TaskId> {
    let mut v: Vec<TaskId> = s.iter().copied().collect();
    v.sort_unstable();
    v
}

// ---------------------------------------------------------------------------
// Clean skeletons
// ---------------------------------------------------------------------------

/// One clean simulation state, frozen before call `i`.
pub(crate) struct CleanSnapshot {
    i: usize,
    cache: ConfigCache,
    policy: Vec<u8>,
    speculative: Vec<TaskId>,
    stats: CacheStats,
}

/// One memoized clean run.
pub(crate) struct CleanSkeleton {
    trace: Vec<TaskId>,
    outcome: SimulationOutcome,
    final_policy: Vec<u8>,
    snapshots: Vec<Arc<CleanSnapshot>>,
    prefix_safe: bool,
}

fn clean_base_key(slots: usize, prefetch: bool, name: &str, policy0: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(64 + policy0.len());
    dbytes::put_str(&mut k, "sched.clean");
    dbytes::put_u64(&mut k, slots as u64);
    dbytes::put_u64(&mut k, prefetch as u64);
    dbytes::put_str(&mut k, name);
    dbytes::put_slice(&mut k, policy0);
    k
}

fn clean_variant_bytes(vs: &[Arc<CleanSkeleton>]) -> u64 {
    vs.iter()
        .map(|sk| {
            let snaps: usize = sk
                .snapshots
                .iter()
                .map(|s| 64 + s.cache.slot_count() * 16 + s.policy.len() + s.speculative.len() * 8)
                .sum();
            (sk.trace.len() * 8 + sk.outcome.outcomes.len() * 24 + sk.final_policy.len() + snaps)
                as u64
                + 128
        })
        .sum()
}

/// The memoizing clean-simulation entry point; behaviorally identical
/// to [`simulate_inner`] call for call.
pub(crate) fn simulate_clean_delta(
    trace: &[TaskId],
    slots: usize,
    policy: &mut dyn Policy,
    prefetch: bool,
    delta: &DeltaCache,
) -> SimulationOutcome {
    let Some(policy0) = policy.delta_state() else {
        // The policy opted out of memoization: longhand, invisible to
        // the cache (no lookup counted).
        return simulate_inner(trace, slots, policy, prefetch);
    };
    let key = clean_base_key(slots, prefetch, policy.name(), &policy0);
    let variants: Option<Arc<Vec<Arc<CleanSkeleton>>>> =
        delta.get(&key).and_then(|v| v.downcast().ok());

    policy.observe_trace(trace);

    // Whole-trace match: the entire run replays as one clone. (Safe
    // even for clairvoyant policies — same trace, same future.)
    if let Some(vs) = &variants {
        if let Some(sk) = vs.iter().find(|sk| sk.trace == trace) {
            if policy.delta_restore(&sk.final_policy) {
                delta.note_full_hit(trace.len() as u64);
                return sk.outcome.clone();
            }
        }
    }

    // First divergence against the variant sharing the longest prefix.
    let mut best: Option<(usize, &Arc<CleanSkeleton>)> = None;
    if let Some(vs) = &variants {
        for sk in vs.iter().filter(|sk| sk.prefix_safe) {
            let d = first_mismatch(&sk.trace, trace);
            if d > 0 && best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, sk));
            }
        }
    }

    let mut sim = CleanSim::new(slots);
    sim.outcomes.reserve(trace.len());
    let mut start = 0usize;
    let mut snapshots: Vec<Arc<CleanSnapshot>> = Vec::new();
    if let Some((d, sk)) = best {
        if let Some(snap) = sk.snapshots.iter().rev().find(|s| s.i <= d) {
            if policy.delta_restore(&snap.policy) {
                sim.cache = snap.cache.clone();
                sim.stats = snap.stats;
                sim.outcomes
                    .extend_from_slice(&sk.outcome.outcomes[..snap.i]);
                sim.speculative = snap.speculative.iter().copied().collect();
                start = snap.i;
                // Prefix snapshots precede the divergence, so they
                // stay valid for the new trace's skeleton too.
                snapshots.extend(sk.snapshots.iter().filter(|s| s.i <= snap.i).cloned());
            }
        }
    }
    if start == 0 {
        delta.note_miss(trace.len() as u64);
    } else {
        delta.note_resume(start as u64, (trace.len() - start) as u64);
    }

    for (i, &task) in trace.iter().enumerate().skip(start) {
        if i > start && i % SNAPSHOT_EVERY == 0 {
            if let Some(pb) = policy.delta_state() {
                snapshots.push(Arc::new(CleanSnapshot {
                    i,
                    cache: sim.cache.clone(),
                    policy: pb,
                    speculative: sorted_tasks(&sim.speculative),
                    stats: sim.stats,
                }));
            }
        }
        sim.step(i, task, policy, prefetch);
    }

    let final_policy = policy.delta_state().unwrap_or_default();
    let outcome = sim.finish();
    let mut vs: Vec<Arc<CleanSkeleton>> = variants.map(|v| (*v).clone()).unwrap_or_default();
    vs.retain(|sk| sk.trace != trace);
    while vs.len() >= MAX_VARIANTS {
        vs.remove(0);
    }
    vs.push(Arc::new(CleanSkeleton {
        trace: trace.to_vec(),
        outcome: outcome.clone(),
        final_policy,
        snapshots,
        prefix_safe: policy.delta_prefix_safe(),
    }));
    let bytes = clean_variant_bytes(&vs);
    delta.put(key, Arc::new(vs), bytes);
    outcome
}

// ---------------------------------------------------------------------------
// Faulty skeletons
// ---------------------------------------------------------------------------

/// One faulty simulation state, frozen before call `i`. The embedded
/// [`FaultState`](hprc_fault::FaultState) is re-pointed at the new
/// run's plan on restore (valid because the snapshot precedes the
/// first plan disagreement).
pub(crate) struct FaultySnapshot {
    i: usize,
    cache: ConfigCache,
    state: hprc_fault::FaultState,
    policy: Vec<u8>,
    speculative: Vec<TaskId>,
    stats: CacheStats,
    seu_invalidations: u64,
    escalation_wipes: u64,
    dropped: u64,
}

/// One memoized faulty run: the plan it was driven by is kept for the
/// divergence scan, not in the key — adjacent fault rates share a
/// seed, so their draws agree over a long prefix.
pub(crate) struct FaultySkeleton {
    trace: Vec<TaskId>,
    plan: FaultPlan,
    outcome: FaultyOutcome,
    final_policy: Vec<u8>,
    snapshots: Vec<Arc<FaultySnapshot>>,
    prefix_safe: bool,
}

fn faulty_base_key(
    slots: usize,
    prefetch: bool,
    name: &str,
    policy0: &[u8],
    plan: &FaultPlan,
) -> Vec<u8> {
    let mut k = Vec::with_capacity(96 + policy0.len());
    dbytes::put_str(&mut k, "sched.faulty");
    dbytes::put_u64(&mut k, slots as u64);
    dbytes::put_u64(&mut k, prefetch as u64);
    dbytes::put_str(&mut k, name);
    dbytes::put_slice(&mut k, policy0);
    // The recovery-policy knobs shape the state machine itself (retry
    // depths, blacklisting), so they partition the key space; the
    // spec probabilities and seed are left to the divergence scan.
    let rp = &plan.policy;
    dbytes::put_u64(&mut k, rp.max_partial_attempts as u64);
    dbytes::put_u64(&mut k, rp.max_full_attempts as u64);
    dbytes::put_f64(&mut k, rp.backoff_base_s);
    dbytes::put_f64(&mut k, rp.refetch_s);
    dbytes::put_u64(&mut k, rp.blacklist_after as u64);
    k
}

/// Whether plans `a` and `b` resolve identically every draw that the
/// memoized call (hit flag + fate) consulted, plus the whole-device
/// SEU sweep. The attempt loops cover all fate shapes uniformly: a
/// hit consulted no attempts (guarded by `was_hit`), a forced-full
/// chain has `partial_attempts == 0`, a non-escalated miss has
/// `full_attempts == 0`.
fn consulted_draws_agree(
    a: &FaultPlan,
    b: &FaultPlan,
    call: u64,
    was_hit: bool,
    fate: &hprc_fault::CallFate,
    slots: usize,
) -> bool {
    if !was_hit {
        for attempt in 1..=fate.partial_attempts {
            if a.partial_attempt(call, attempt) != b.partial_attempt(call, attempt) {
                return false;
            }
        }
        for attempt in 1..=fate.full_attempts {
            if a.full_attempt(call, attempt) != b.full_attempt(call, attempt) {
                return false;
            }
        }
    }
    (0..slots).all(|s| a.seu_strikes(call, s) == b.seu_strikes(call, s))
}

fn faulty_variant_bytes(vs: &[Arc<FaultySkeleton>]) -> u64 {
    vs.iter()
        .map(|sk| {
            let snaps: usize = sk
                .snapshots
                .iter()
                .map(|s| 128 + s.cache.slot_count() * 24 + s.policy.len() + s.speculative.len() * 8)
                .sum();
            (sk.trace.len() * 8
                + sk.outcome.base.outcomes.len() * 24
                + sk.outcome.fates.len() * 48
                + sk.final_policy.len()
                + snaps) as u64
                + 192
        })
        .sum()
}

/// The memoizing faulty-simulation entry point; behaviorally identical
/// to [`simulate_faulty_inner`] call for call.
pub(crate) fn simulate_faulty_delta(
    trace: &[TaskId],
    slots: usize,
    policy: &mut dyn Policy,
    prefetch: bool,
    plan: &FaultPlan,
    delta: &DeltaCache,
) -> FaultyOutcome {
    let Some(policy0) = policy.delta_state() else {
        return simulate_faulty_inner(trace, slots, policy, prefetch, plan);
    };
    let key = faulty_base_key(slots, prefetch, policy.name(), &policy0, plan);
    let variants: Option<Arc<Vec<Arc<FaultySkeleton>>>> =
        delta.get(&key).and_then(|v| v.downcast().ok());

    policy.observe_trace(trace);

    // Divergence per skeleton: first trace mismatch, then clipped to
    // the first call where a draw the memoized run consulted resolves
    // differently under the new plan. Hits consult nothing; a miss
    // consults exactly the attempts its fate records; the SEU sweep
    // is compared conservatively over all slots.
    let divergence = |sk: &FaultySkeleton| -> usize {
        let d = first_mismatch(&sk.trace, trace);
        if sk.plan == *plan {
            return d;
        }
        (0..d)
            .find(|&c| {
                !consulted_draws_agree(
                    &sk.plan,
                    plan,
                    c as u64,
                    sk.outcome.base.outcomes[c].is_hit(),
                    &sk.outcome.fates[c],
                    slots,
                )
            })
            .unwrap_or(d)
    };

    // Whole-run match: equal traces and plan agreement at every call.
    if let Some(vs) = &variants {
        if let Some(sk) = vs
            .iter()
            .find(|sk| sk.trace.len() == trace.len() && divergence(sk) == trace.len())
        {
            if policy.delta_restore(&sk.final_policy) {
                delta.note_full_hit(trace.len() as u64);
                return sk.outcome.clone();
            }
        }
    }

    let mut best: Option<(usize, &Arc<FaultySkeleton>)> = None;
    if let Some(vs) = &variants {
        for sk in vs.iter().filter(|sk| sk.prefix_safe) {
            let d = divergence(sk);
            if d > 0 && best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, sk));
            }
        }
    }

    let mut sim = FaultySim::new(*plan, slots);
    sim.outcomes.reserve(trace.len());
    sim.fates.reserve(trace.len());
    let mut start = 0usize;
    let mut snapshots: Vec<Arc<FaultySnapshot>> = Vec::new();
    if let Some((d, sk)) = best {
        if let Some(snap) = sk.snapshots.iter().rev().find(|s| s.i <= d) {
            if policy.delta_restore(&snap.policy) {
                sim.cache = snap.cache.clone();
                let mut state = snap.state.clone();
                // The snapshot accumulated its escalations under the
                // memoized plan; both plans agree over the replayed
                // prefix, so the state transfers — under the new plan.
                state.set_plan(*plan);
                sim.state = state;
                sim.stats = snap.stats;
                sim.outcomes
                    .extend_from_slice(&sk.outcome.base.outcomes[..snap.i]);
                sim.fates.extend_from_slice(&sk.outcome.fates[..snap.i]);
                sim.speculative = snap.speculative.iter().copied().collect();
                sim.seu_invalidations = snap.seu_invalidations;
                sim.escalation_wipes = snap.escalation_wipes;
                sim.dropped = snap.dropped;
                start = snap.i;
                snapshots.extend(sk.snapshots.iter().filter(|s| s.i <= snap.i).cloned());
            }
        }
    }
    if start == 0 {
        delta.note_miss(trace.len() as u64);
    } else {
        delta.note_resume(start as u64, (trace.len() - start) as u64);
    }

    for (i, &task) in trace.iter().enumerate().skip(start) {
        if i > start && i % SNAPSHOT_EVERY == 0 {
            if let Some(pb) = policy.delta_state() {
                snapshots.push(Arc::new(FaultySnapshot {
                    i,
                    cache: sim.cache.clone(),
                    state: sim.state.clone(),
                    policy: pb,
                    speculative: sorted_tasks(&sim.speculative),
                    stats: sim.stats,
                    seu_invalidations: sim.seu_invalidations,
                    escalation_wipes: sim.escalation_wipes,
                    dropped: sim.dropped,
                }));
            }
        }
        sim.step(i, task, policy, prefetch);
    }

    let final_policy = policy.delta_state().unwrap_or_default();
    let outcome = sim.finish();
    let mut vs: Vec<Arc<FaultySkeleton>> = variants.map(|v| (*v).clone()).unwrap_or_default();
    vs.retain(|sk| !(sk.trace == trace && sk.plan == *plan));
    while vs.len() >= MAX_VARIANTS {
        vs.remove(0);
    }
    vs.push(Arc::new(FaultySkeleton {
        trace: trace.to_vec(),
        plan: *plan,
        outcome: outcome.clone(),
        final_policy,
        snapshots,
        prefix_safe: policy.delta_prefix_safe(),
    }));
    let bytes = faulty_variant_bytes(&vs);
    delta.put(key, Arc::new(vs), bytes);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::simulate_faulty;
    use crate::policies::{
        AlwaysMiss, AssociationRule, Belady, Fifo, Lfu, Lru, Markov, RandomPolicy,
    };
    use crate::simulate::simulate;
    use hprc_ctx::ExecCtx;
    use hprc_fault::{FaultSpec, RecoveryPolicy};

    fn ids(v: &[usize]) -> Vec<TaskId> {
        v.iter().map(|&i| TaskId(i)).collect()
    }

    /// Drives a policy over a prefix, round-trips its delta state into
    /// a fresh instance, and checks the two agree on every subsequent
    /// decision over the suffix.
    fn roundtrip_agrees(make: &dyn Fn() -> Box<dyn Policy>, trace: &[TaskId], slots: usize) {
        let mut warm = make();
        warm.observe_trace(trace);
        let mut cache = ConfigCache::new(slots);
        let half = trace.len() / 2;
        for (i, &t) in trace[..half].iter().enumerate() {
            if !cache.contains(t) {
                let slot = cache
                    .empty_slot()
                    .unwrap_or_else(|| warm.choose_victim(&cache, t, i));
                cache.load(slot, t);
                warm.on_load(t, slot, i);
            }
            let slot = cache.slot_of(t).unwrap();
            warm.on_access(t, slot, i);
        }
        let state = warm.delta_state().expect("policy supports delta");
        let mut restored = make();
        restored.observe_trace(trace);
        assert!(restored.delta_restore(&state), "restore accepts own bytes");
        assert_eq!(
            restored.delta_state().as_deref(),
            Some(&state[..]),
            "restored state re-encodes identically"
        );
        let mut rcache = cache.clone();
        for (i, &t) in trace[half..].iter().enumerate() {
            let i = half + i;
            assert_eq!(
                warm.predict_next(t),
                restored.predict_next(t),
                "prediction at {i}"
            );
            if !cache.contains(t) {
                let v1 = warm.choose_victim(&cache, t, i);
                let v2 = restored.choose_victim(&rcache, t, i);
                assert_eq!(v1, v2, "victim at {i}");
                cache.load(v1, t);
                rcache.load(v2, t);
                warm.on_load(t, v1, i);
                restored.on_load(t, v2, i);
            }
            let slot = cache.slot_of(t).unwrap();
            warm.on_access(t, slot, i);
            restored.on_access(t, slot, i);
        }
    }

    #[test]
    fn every_policy_roundtrips_its_delta_state() {
        let trace = ids(&[0, 3, 1, 2, 0, 0, 2, 1, 3, 2, 4, 1, 0, 2, 3, 4].repeat(4));
        let makes: Vec<Box<dyn Fn() -> Box<dyn Policy>>> = vec![
            Box::new(|| Box::new(AlwaysMiss::new())),
            Box::new(|| Box::new(Lru::new())),
            Box::new(|| Box::new(Fifo::new())),
            Box::new(|| Box::new(Lfu::new())),
            Box::new(|| Box::new(Belady::new())),
            Box::new(|| Box::new(RandomPolicy::new(42))),
            Box::new(|| Box::new(Markov::with_decision_latency(1e-5))),
            Box::new(|| Box::new(AssociationRule::new(3, 0.4))),
        ];
        for make in &makes {
            roundtrip_agrees(make, &trace, 3);
        }
    }

    #[test]
    fn belady_is_not_prefix_safe_but_others_are() {
        assert!(!Belady::new().delta_prefix_safe());
        assert!(Lru::new().delta_prefix_safe());
        assert!(RandomPolicy::new(1).delta_prefix_safe());
        assert!(Markov::new().delta_prefix_safe());
    }

    fn cycle_trace(seed: u64, len: usize) -> Vec<TaskId> {
        crate::traces::TraceSpec::Zipf {
            n_tasks: 6,
            alpha: 1.1,
            len,
        }
        .generate(seed)
    }

    #[test]
    fn clean_delta_matches_scratch_across_adjacent_traces() {
        let delta = DeltaCache::new(1 << 20);
        let dctx = ExecCtx::default().with_delta(delta.clone());
        let traces: Vec<Vec<TaskId>> = (0..4).map(|s| cycle_trace(s, 200)).collect();
        // Two passes: the second is all warm.
        for _ in 0..2 {
            for t in &traces {
                let with = simulate(t, 3, &mut Markov::new(), true, &dctx);
                let without = simulate(t, 3, &mut Markov::new(), true, &ExecCtx::default());
                assert_eq!(with, without);
            }
        }
        let acct = delta.account().unwrap();
        assert_eq!(acct.lookups, 8);
        assert!(acct.full_hits >= 4, "second pass warm-hits: {acct:?}");
    }

    #[test]
    fn clean_delta_resumes_from_shared_prefixes() {
        let delta = DeltaCache::new(1 << 20);
        let dctx = ExecCtx::default().with_delta(delta.clone());
        let base = cycle_trace(7, 300);
        // A variant diverging late: same prefix, perturbed tail.
        let mut variant = base.clone();
        for t in &mut variant[250..] {
            *t = TaskId((t.0 + 1) % 6);
        }
        let a = simulate(&base, 3, &mut Lru::new(), false, &dctx);
        let b = simulate(&variant, 3, &mut Lru::new(), false, &dctx);
        let a0 = simulate(&base, 3, &mut Lru::new(), false, &ExecCtx::default());
        let b0 = simulate(&variant, 3, &mut Lru::new(), false, &ExecCtx::default());
        assert_eq!(a, a0);
        assert_eq!(b, b0);
        let acct = delta.account().unwrap();
        assert_eq!(acct.resumes, 1, "{acct:?}");
        assert!(
            acct.calls_replayed >= 224,
            "the shared 250-call prefix resumes from a snapshot: {acct:?}"
        );
    }

    #[test]
    fn belady_skeletons_never_resume_under_a_different_future() {
        let delta = DeltaCache::new(1 << 20);
        let dctx = ExecCtx::default().with_delta(delta.clone());
        let base = cycle_trace(3, 200);
        let mut variant = base.clone();
        let last = variant.len() - 1;
        variant[last] = TaskId((variant[last].0 + 1) % 6);
        let a = simulate(&base, 2, &mut Belady::new(), false, &dctx);
        let b = simulate(&variant, 2, &mut Belady::new(), false, &dctx);
        assert_eq!(
            a,
            simulate(&base, 2, &mut Belady::new(), false, &ExecCtx::default())
        );
        assert_eq!(
            b,
            simulate(&variant, 2, &mut Belady::new(), false, &ExecCtx::default())
        );
        let acct = delta.account().unwrap();
        assert_eq!(acct.resumes, 0, "clairvoyant prefix reuse forbidden");
        assert_eq!(acct.misses, 2);
        // But the exact same trace still full-hits.
        simulate(&base, 2, &mut Belady::new(), false, &dctx);
        assert_eq!(delta.account().unwrap().full_hits, 1);
    }

    #[test]
    fn faulty_delta_matches_scratch_across_adjacent_rates() {
        let delta = DeltaCache::new(1 << 22);
        let dctx = ExecCtx::default().with_delta(delta.clone());
        // Finely-spaced rates: coupled uniform draws disagree at a
        // given call only with probability ~ the rate gap, so
        // adjacent points share a long decision prefix.
        let trace = cycle_trace(11, 250);
        for &rate in &[0.1, 0.105, 0.11, 0.115] {
            let plan = FaultPlan::new(FaultSpec::uniform(rate), RecoveryPolicy::default(), 99);
            let with = simulate_faulty(&trace, 3, &mut Lru::new(), false, &plan, &dctx);
            let without = simulate_faulty(
                &trace,
                3,
                &mut Lru::new(),
                false,
                &plan,
                &ExecCtx::default(),
            );
            assert_eq!(with, without, "rate {rate}");
        }
        let acct = delta.account().unwrap();
        assert_eq!(acct.lookups, 4);
        assert!(
            acct.calls_replayed > 0,
            "coupled seeds share a prefix: {acct:?}"
        );
        // Second sweep over the same rates: all whole-run hits.
        for &rate in &[0.1, 0.105, 0.11, 0.115] {
            let plan = FaultPlan::new(FaultSpec::uniform(rate), RecoveryPolicy::default(), 99);
            let with = simulate_faulty(&trace, 3, &mut Lru::new(), false, &plan, &dctx);
            let without = simulate_faulty(
                &trace,
                3,
                &mut Lru::new(),
                false,
                &plan,
                &ExecCtx::default(),
            );
            assert_eq!(with, without, "warm rate {rate}");
        }
        assert_eq!(delta.account().unwrap().full_hits, 4);
    }

    #[test]
    fn faulty_delta_respects_recovery_policy_in_the_key() {
        let delta = DeltaCache::new(1 << 22);
        let dctx = ExecCtx::default().with_delta(delta.clone());
        let trace = cycle_trace(5, 150);
        let spec = FaultSpec::uniform(0.3);
        let rp_a = RecoveryPolicy::default();
        let rp_b = RecoveryPolicy {
            blacklist_after: 1,
            ..RecoveryPolicy::default()
        };
        for rp in [rp_a, rp_b] {
            let plan = FaultPlan::new(spec, rp, 17);
            let with = simulate_faulty(&trace, 2, &mut Fifo::new(), false, &plan, &dctx);
            let without = simulate_faulty(
                &trace,
                2,
                &mut Fifo::new(),
                false,
                &plan,
                &ExecCtx::default(),
            );
            assert_eq!(with, without);
        }
        // Different recovery knobs occupy different keys: no cross-hit.
        let acct = delta.account().unwrap();
        assert_eq!(acct.misses, 2);
        assert_eq!(acct.full_hits + acct.resumes, 0);
    }

    #[test]
    fn tiny_cache_bound_evicts_but_stays_correct() {
        // A bound far below one skeleton: distinct slot counts give
        // distinct base keys, so each new entry evicts the previous
        // one to fit — yet results stay exact.
        let delta = DeltaCache::new(64);
        let dctx = ExecCtx::default().with_delta(delta.clone());
        for s in 0..4usize {
            let t = cycle_trace(s as u64, 120);
            let slots = 2 + s;
            let with = simulate(&t, slots, &mut Markov::new(), true, &dctx);
            let without = simulate(&t, slots, &mut Markov::new(), true, &ExecCtx::default());
            assert_eq!(with, without);
        }
        let acct = delta.account().unwrap();
        assert!(acct.evictions > 0, "bound enforced: {acct:?}");
        assert!(acct.bytes_held > 0);
    }

    #[test]
    fn forces_miss_policies_memoize_too() {
        let delta = DeltaCache::new(1 << 20);
        let dctx = ExecCtx::default().with_delta(delta.clone());
        let t = cycle_trace(2, 100);
        for _ in 0..2 {
            let with = simulate(&t, 2, &mut AlwaysMiss::new(), false, &dctx);
            let without = simulate(&t, 2, &mut AlwaysMiss::new(), false, &ExecCtx::default());
            assert_eq!(with, without);
        }
        assert_eq!(delta.account().unwrap().full_hits, 1);
    }
}
