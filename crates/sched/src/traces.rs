//! Task-call trace generators: the workload side of section 3.1's "each
//! application requires on the average a few hardware functions (tasks)".
//!
//! All generators are deterministic per seed (ChaCha8).

use rand::distributions::{Distribution, WeightedIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::cache::TaskId;

/// A declarative trace description, serializable into experiment configs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSpec {
    /// Independent uniform draws over `n_tasks` tasks.
    Uniform {
        /// Distinct tasks.
        n_tasks: usize,
        /// Trace length.
        len: usize,
    },
    /// Zipf-distributed draws (exponent `alpha`): a few hot tasks dominate,
    /// the locality assumption behind configuration caching.
    Zipf {
        /// Distinct tasks.
        n_tasks: usize,
        /// Skew exponent (> 0; larger = more skewed).
        alpha: f64,
        /// Trace length.
        len: usize,
    },
    /// Phased workload: execution proceeds in phases, each drawing
    /// uniformly from a small working set — the "processing spatial
    /// locality" that grouping related functions exploits (section 2.1).
    Phased {
        /// Distinct tasks overall.
        n_tasks: usize,
        /// Working-set size per phase.
        working_set: usize,
        /// Calls per phase.
        phase_len: usize,
        /// Trace length.
        len: usize,
    },
    /// A repeating pipeline of `stages` tasks (0, 1, ..., stages-1, 0, ...)
    /// with probability `noise` of substituting a uniformly random task —
    /// the image-pipeline workload of section 4.3 plus data-dependent
    /// detours.
    Looping {
        /// Pipeline stages (also the task universe when `n_tasks == stages`).
        stages: usize,
        /// Distinct tasks the noise can draw from.
        n_tasks: usize,
        /// Substitution probability in `[0, 1]`.
        noise: f64,
        /// Trace length.
        len: usize,
    },
}

impl TraceSpec {
    /// Materializes the trace with the given seed.
    pub fn generate(&self, seed: u64) -> Vec<TaskId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match *self {
            TraceSpec::Uniform { n_tasks, len } => {
                assert!(n_tasks > 0, "need at least one task");
                (0..len)
                    .map(|_| TaskId(rng.gen_range(0..n_tasks)))
                    .collect()
            }
            TraceSpec::Zipf {
                n_tasks,
                alpha,
                len,
            } => {
                assert!(n_tasks > 0 && alpha > 0.0, "need tasks and alpha > 0");
                let weights: Vec<f64> = (1..=n_tasks).map(|k| (k as f64).powf(-alpha)).collect();
                let dist = WeightedIndex::new(&weights).expect("positive weights");
                (0..len).map(|_| TaskId(dist.sample(&mut rng))).collect()
            }
            TraceSpec::Phased {
                n_tasks,
                working_set,
                phase_len,
                len,
            } => {
                assert!(
                    working_set > 0 && working_set <= n_tasks && phase_len > 0,
                    "working set must be within the task universe"
                );
                let mut trace = Vec::with_capacity(len);
                while trace.len() < len {
                    // Draw a fresh working set for this phase.
                    let mut universe: Vec<usize> = (0..n_tasks).collect();
                    for i in 0..working_set {
                        let j = rng.gen_range(i..n_tasks);
                        universe.swap(i, j);
                    }
                    let ws = &universe[..working_set];
                    for _ in 0..phase_len.min(len - trace.len()) {
                        trace.push(TaskId(ws[rng.gen_range(0..working_set)]));
                    }
                }
                trace
            }
            TraceSpec::Looping {
                stages,
                n_tasks,
                noise,
                len,
            } => {
                assert!(stages > 0 && n_tasks >= stages, "stages must exist");
                assert!((0.0..=1.0).contains(&noise), "noise is a probability");
                (0..len)
                    .map(|i| {
                        if rng.gen::<f64>() < noise {
                            TaskId(rng.gen_range(0..n_tasks))
                        } else {
                            TaskId(i % stages)
                        }
                    })
                    .collect()
            }
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            TraceSpec::Uniform { n_tasks, .. } => format!("uniform({n_tasks})"),
            TraceSpec::Zipf { n_tasks, alpha, .. } => format!("zipf({n_tasks}, a={alpha})"),
            TraceSpec::Phased {
                n_tasks,
                working_set,
                ..
            } => format!("phased({working_set}/{n_tasks})"),
            TraceSpec::Looping { stages, noise, .. } => {
                format!("loop({stages}, noise={noise})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let spec = TraceSpec::Uniform {
            n_tasks: 5,
            len: 200,
        };
        let a = spec.generate(1);
        let b = spec.generate(1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|t| t.0 < 5));
        assert_ne!(a, spec.generate(2));
    }

    #[test]
    fn zipf_is_skewed_toward_low_ids() {
        let spec = TraceSpec::Zipf {
            n_tasks: 10,
            alpha: 1.5,
            len: 5000,
        };
        let t = spec.generate(3);
        let count0 = t.iter().filter(|x| x.0 == 0).count();
        let count9 = t.iter().filter(|x| x.0 == 9).count();
        assert!(count0 > 5 * count9.max(1), "{count0} vs {count9}");
    }

    #[test]
    fn phased_stays_within_working_sets() {
        let spec = TraceSpec::Phased {
            n_tasks: 20,
            working_set: 3,
            phase_len: 50,
            len: 200,
        };
        let t = spec.generate(4);
        assert_eq!(t.len(), 200);
        // Each phase uses at most `working_set` distinct tasks.
        for phase in t.chunks(50) {
            let distinct: std::collections::HashSet<_> = phase.iter().collect();
            assert!(distinct.len() <= 3);
        }
    }

    #[test]
    fn looping_without_noise_is_the_pipeline() {
        let spec = TraceSpec::Looping {
            stages: 3,
            n_tasks: 3,
            noise: 0.0,
            len: 9,
        };
        let t = spec.generate(0);
        let expected: Vec<TaskId> = [0, 1, 2, 0, 1, 2, 0, 1, 2]
            .iter()
            .map(|&i| TaskId(i))
            .collect();
        assert_eq!(t, expected);
    }

    #[test]
    fn looping_noise_injects_deviations() {
        let spec = TraceSpec::Looping {
            stages: 3,
            n_tasks: 8,
            noise: 0.5,
            len: 300,
        };
        let t = spec.generate(7);
        let deviations = t.iter().enumerate().filter(|(i, t)| t.0 != i % 3).count();
        assert!(deviations > 50, "{deviations} deviations");
    }

    #[test]
    fn labels_are_distinct() {
        let specs = [
            TraceSpec::Uniform { n_tasks: 3, len: 1 },
            TraceSpec::Zipf {
                n_tasks: 3,
                alpha: 1.0,
                len: 1,
            },
            TraceSpec::Phased {
                n_tasks: 3,
                working_set: 2,
                phase_len: 1,
                len: 1,
            },
            TraceSpec::Looping {
                stages: 3,
                n_tasks: 3,
                noise: 0.1,
                len: 1,
            },
        ];
        let labels: std::collections::HashSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len());
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn oversized_working_set_rejected() {
        TraceSpec::Phased {
            n_tasks: 2,
            working_set: 5,
            phase_len: 10,
            len: 10,
        }
        .generate(0);
    }
}
