//! Association-rule prefetching — after the paper's reference [26]
//! (Taher et al., *"Configuration Caching in Adaptive Computing Systems
//! Using Association Rule Mining (ARM)"*).
//!
//! Instead of only the immediate successor (first-order Markov), the
//! predictor mines *co-occurrence within a sliding window*: tasks that
//! appear together soon after task `t` are associated with `t`, whatever
//! their exact order. Rules are `t → u` with support = #windows starting
//! at `t` that contain `u`, and confidence = support / #occurrences of
//! `t`. Prediction returns the highest-confidence consequent above a
//! minimum confidence.

use std::collections::{HashMap, VecDeque};

use crate::cache::{ConfigCache, TaskId};
use crate::policies::Lru;
use crate::policy::Policy;
use hprc_obs::delta::bytes as dbytes;

/// Association-rule predictor with LRU replacement.
#[derive(Debug, Clone)]
pub struct AssociationRule {
    /// Sliding-window length (how far ahead co-occurrence counts).
    window: usize,
    /// Minimum confidence for a rule to fire.
    min_confidence: f64,
    /// Decision latency (seconds).
    decision_latency_s: f64,
    /// Recent accesses (oldest first), at most `window + 1` long.
    recent: VecDeque<TaskId>,
    /// `antecedent -> (consequent -> support)`.
    support: HashMap<TaskId, HashMap<TaskId, u64>>,
    /// `antecedent -> occurrence count`.
    occurrences: HashMap<TaskId, u64>,
    lru: Lru,
}

impl AssociationRule {
    /// Creates the predictor with a co-occurrence window and confidence
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0` or `min_confidence` is outside `[0, 1]`.
    pub fn new(window: usize, min_confidence: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            (0.0..=1.0).contains(&min_confidence),
            "confidence is a probability"
        );
        AssociationRule {
            window,
            min_confidence,
            decision_latency_s: 0.0,
            recent: VecDeque::new(),
            support: HashMap::new(),
            occurrences: HashMap::new(),
            lru: Lru::new(),
        }
    }

    /// Sets a nonzero decision latency (mining is not free — the paper's
    /// `T_setup`).
    pub fn with_decision_latency(mut self, seconds: f64) -> Self {
        self.decision_latency_s = seconds;
        self
    }

    /// Confidence of the rule `antecedent -> consequent` learned so far.
    pub fn confidence(&self, antecedent: TaskId, consequent: TaskId) -> f64 {
        let occ = self.occurrences.get(&antecedent).copied().unwrap_or(0);
        if occ == 0 {
            return 0.0;
        }
        let sup = self
            .support
            .get(&antecedent)
            .and_then(|m| m.get(&consequent))
            .copied()
            .unwrap_or(0);
        sup as f64 / occ as f64
    }
}

impl Policy for AssociationRule {
    fn name(&self) -> &'static str {
        "assoc-rule"
    }

    fn decision_latency_s(&self) -> f64 {
        self.decision_latency_s
    }

    fn choose_victim(&mut self, cache: &ConfigCache, task: TaskId, index: usize) -> usize {
        self.lru.choose_victim(cache, task, index)
    }

    fn on_access(&mut self, task: TaskId, slot: usize, index: usize) {
        // Update co-occurrence: `task` is a consequent for every
        // antecedent still inside the window (deduplicated per window by
        // only counting the first sighting: approximate via direct count —
        // repeated consequents inflate support slightly, acceptable for a
        // confidence ranking).
        for &prev in self.recent.iter() {
            if prev != task {
                *self
                    .support
                    .entry(prev)
                    .or_default()
                    .entry(task)
                    .or_insert(0) += 1;
            }
        }
        *self.occurrences.entry(task).or_insert(0) += 1;
        self.recent.push_back(task);
        if self.recent.len() > self.window {
            self.recent.pop_front();
        }
        self.lru.on_access(task, slot, index);
    }

    fn predict_next(&self, current: TaskId) -> Option<TaskId> {
        let rules = self.support.get(&current)?;
        let occ = self.occurrences.get(&current).copied().unwrap_or(0);
        if occ == 0 {
            return None;
        }
        rules
            .iter()
            .map(|(&t, &sup)| (t, sup as f64 / occ as f64))
            .filter(|&(_, conf)| conf >= self.min_confidence)
            // Deterministic argmax: confidence, then lowest task id.
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0 .0.cmp(&a.0 .0)))
            .map(|(t, _)| t)
    }

    fn delta_state(&self) -> Option<Vec<u8>> {
        let mut v = Vec::new();
        // Configuration first (window/threshold/latency distinguish
        // instances in cache keys), then mutable state canonically.
        dbytes::put_u64(&mut v, self.window as u64);
        dbytes::put_f64(&mut v, self.min_confidence);
        dbytes::put_f64(&mut v, self.decision_latency_s);
        dbytes::put_u64(&mut v, self.recent.len() as u64);
        for &t in &self.recent {
            dbytes::put_u64(&mut v, t.0 as u64);
        }
        let mut occ: Vec<(TaskId, u64)> = self.occurrences.iter().map(|(t, c)| (*t, *c)).collect();
        occ.sort_unstable();
        dbytes::put_u64(&mut v, occ.len() as u64);
        for (t, c) in occ {
            dbytes::put_u64(&mut v, t.0 as u64);
            dbytes::put_u64(&mut v, c);
        }
        let mut ants: Vec<&TaskId> = self.support.keys().collect();
        ants.sort_unstable();
        dbytes::put_u64(&mut v, ants.len() as u64);
        for ant in ants {
            dbytes::put_u64(&mut v, ant.0 as u64);
            let mut rows: Vec<(TaskId, u64)> =
                self.support[ant].iter().map(|(t, c)| (*t, *c)).collect();
            rows.sort_unstable();
            dbytes::put_u64(&mut v, rows.len() as u64);
            for (t, c) in rows {
                dbytes::put_u64(&mut v, t.0 as u64);
                dbytes::put_u64(&mut v, c);
            }
        }
        dbytes::put_slice(&mut v, &self.lru.delta_state()?);
        Some(v)
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let mut pos = 0;
        let (Some(window), Some(min_confidence), Some(latency)) = (
            dbytes::get_u64(state, &mut pos),
            dbytes::get_f64(state, &mut pos),
            dbytes::get_f64(state, &mut pos),
        ) else {
            return false;
        };
        if window == 0 || !(0.0..=1.0).contains(&min_confidence) {
            return false;
        }
        let Some(n_recent) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let mut recent = VecDeque::with_capacity(n_recent as usize);
        for _ in 0..n_recent {
            match dbytes::get_u64(state, &mut pos) {
                Some(t) => recent.push_back(TaskId(t as usize)),
                None => return false,
            }
        }
        let Some(n_occ) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let mut occurrences = HashMap::with_capacity(n_occ as usize);
        for _ in 0..n_occ {
            let (Some(t), Some(c)) = (
                dbytes::get_u64(state, &mut pos),
                dbytes::get_u64(state, &mut pos),
            ) else {
                return false;
            };
            occurrences.insert(TaskId(t as usize), c);
        }
        let Some(n_ants) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let mut support: HashMap<TaskId, HashMap<TaskId, u64>> = HashMap::new();
        for _ in 0..n_ants {
            let (Some(ant), Some(n_rows)) = (
                dbytes::get_u64(state, &mut pos),
                dbytes::get_u64(state, &mut pos),
            ) else {
                return false;
            };
            let mut rows = HashMap::with_capacity(n_rows as usize);
            for _ in 0..n_rows {
                let (Some(t), Some(c)) = (
                    dbytes::get_u64(state, &mut pos),
                    dbytes::get_u64(state, &mut pos),
                ) else {
                    return false;
                };
                rows.insert(TaskId(t as usize), c);
            }
            support.insert(TaskId(ant as usize), rows);
        }
        let Some(lru_len) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let Some(lru_bytes) = state.get(pos..pos + lru_len as usize) else {
            return false;
        };
        let mut lru = Lru::new();
        if !lru.delta_restore(lru_bytes) {
            return false;
        }
        pos += lru_len as usize;
        if pos != state.len() {
            return false;
        }
        self.window = window as usize;
        self.min_confidence = min_confidence;
        self.decision_latency_s = latency;
        self.recent = recent;
        self.occurrences = occurrences;
        self.support = support;
        self.lru = lru;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate;
    use crate::traces::TraceSpec;

    #[test]
    fn learns_windowed_association() {
        let mut p = AssociationRule::new(2, 0.3);
        // Pattern A B C repeated: within window 2 after A comes B and C.
        for (i, &t) in [0usize, 1, 2].repeat(20).iter().enumerate() {
            p.on_access(TaskId(t), t % 2, i);
        }
        assert!(p.confidence(TaskId(0), TaskId(1)) > 0.8);
        assert!(p.confidence(TaskId(0), TaskId(2)) > 0.3);
        assert_eq!(p.predict_next(TaskId(0)), Some(TaskId(1)));
    }

    #[test]
    fn no_rule_below_confidence_threshold() {
        let mut p = AssociationRule::new(1, 0.9);
        // Alternating successors: A->B half the time, A->C half the time.
        for (i, &t) in [0usize, 1, 0, 2].repeat(20).iter().enumerate() {
            p.on_access(TaskId(t), 0, i);
        }
        assert!(p.predict_next(TaskId(0)).is_none());
        // Lowering the bar finds the (tied) majority rule.
        let mut p2 = AssociationRule::new(1, 0.3);
        for (i, &t) in [0usize, 1, 0, 2].repeat(20).iter().enumerate() {
            p2.on_access(TaskId(t), 0, i);
        }
        assert!(p2.predict_next(TaskId(0)).is_some());
    }

    #[test]
    fn prefetches_on_looping_workload() {
        // On a strict A-B-C cycle both consequents of each antecedent are
        // equally confident (window 2 sees both), so the tie-broken
        // prediction is right two calls out of three: H -> 2/3. A
        // successor-only Markov beats ARM on strictly ordered traces; ARM
        // earns its keep on unordered co-occurrence (see the next test).
        let trace = TraceSpec::Looping {
            stages: 3,
            n_tasks: 3,
            noise: 0.0,
            len: 300,
        }
        .generate(1);
        let out = simulate(
            &trace,
            2,
            &mut AssociationRule::new(2, 0.5),
            true,
            &hprc_ctx::ExecCtx::default(),
        );
        assert!(out.hit_ratio() > 0.6, "H = {}", out.hit_ratio());
    }

    #[test]
    fn prefetch_pollution_when_working_set_exceeds_slots() {
        // A documented hazard of speculative configuration: with a 3-task
        // working set over only 2 PRRs, ARM's speculative loads evict
        // entries demand caching would have kept — prefetching can *lose*
        // to plain LRU. (With enough PRRs the effect disappears: see
        // below.)
        let trace = TraceSpec::Phased {
            n_tasks: 8,
            working_set: 3,
            phase_len: 60,
            len: 600,
        }
        .generate(3);
        let plain2 = simulate(
            &trace,
            2,
            &mut Lru::new(),
            false,
            &hprc_ctx::ExecCtx::default(),
        );
        let arm2 = simulate(
            &trace,
            2,
            &mut AssociationRule::new(3, 0.4),
            true,
            &hprc_ctx::ExecCtx::default(),
        );
        assert!(
            arm2.stats.hits < plain2.stats.hits,
            "pollution expected: arm {} vs lru {}",
            arm2.stats.hits,
            plain2.stats.hits
        );
        // With 4 slots the working set fits and ARM at least matches LRU.
        let plain4 = simulate(
            &trace,
            4,
            &mut Lru::new(),
            false,
            &hprc_ctx::ExecCtx::default(),
        );
        let arm4 = simulate(
            &trace,
            4,
            &mut AssociationRule::new(3, 0.4),
            true,
            &hprc_ctx::ExecCtx::default(),
        );
        assert!(
            arm4.stats.hits >= plain4.stats.hits,
            "arm {} vs lru {}",
            arm4.stats.hits,
            plain4.stats.hits
        );
    }

    #[test]
    fn unknown_antecedent_predicts_nothing() {
        let p = AssociationRule::new(3, 0.1);
        assert_eq!(p.predict_next(TaskId(9)), None);
        assert_eq!(p.confidence(TaskId(9), TaskId(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        AssociationRule::new(0, 0.5);
    }
}
