//! First-in-first-out replacement.

use std::collections::VecDeque;

use crate::cache::{ConfigCache, TaskId};
use crate::policy::Policy;
use hprc_obs::delta::bytes as dbytes;

/// Evicts the slot whose configuration was loaded longest ago. Hits do not
/// refresh a slot's position — only reloads do.
#[derive(Debug, Default, Clone)]
pub struct Fifo {
    load_order: VecDeque<usize>,
}

impl Fifo {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        self.load_order
            .front()
            .copied()
            .unwrap_or(0)
            .min(cache.slot_count() - 1)
    }

    fn on_access(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    fn on_load(&mut self, _task: TaskId, slot: usize, _index: usize) {
        self.load_order.retain(|&s| s != slot);
        self.load_order.push_back(slot);
    }

    fn delta_state(&self) -> Option<Vec<u8>> {
        let mut v = Vec::with_capacity(8 + 8 * self.load_order.len());
        dbytes::put_u64(&mut v, self.load_order.len() as u64);
        for &s in &self.load_order {
            dbytes::put_u64(&mut v, s as u64);
        }
        Some(v)
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let mut pos = 0;
        let Some(n) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let mut order = VecDeque::with_capacity(n as usize);
        for _ in 0..n {
            match dbytes::get_u64(state, &mut pos) {
                Some(s) => order.push_back(s as usize),
                None => return false,
            }
        }
        if pos != state.len() {
            return false;
        }
        self.load_order = order;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_load() {
        let mut p = Fifo::new();
        let mut c = ConfigCache::new(2);
        c.load(0, TaskId(1));
        p.on_load(TaskId(1), 0, 0);
        c.load(1, TaskId(2));
        p.on_load(TaskId(2), 1, 1);
        // Hit on slot 0 does not change FIFO order.
        p.on_access(TaskId(1), 0, 2);
        assert_eq!(p.choose_victim(&c, TaskId(3), 3), 0);
        // Reloading slot 0 sends it to the back.
        p.on_load(TaskId(3), 0, 3);
        assert_eq!(p.choose_victim(&c, TaskId(4), 4), 1);
    }
}
