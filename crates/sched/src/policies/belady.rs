//! Belady's clairvoyant optimal replacement (MIN).

use std::collections::HashMap;

use crate::cache::{ConfigCache, TaskId};
use crate::policy::Policy;

/// The offline-optimal policy: evicts the resident configuration whose next
/// use lies farthest in the future (or never recurs). Requires the full
/// trace via [`Policy::observe_trace`]; it upper-bounds the hit ratio any
/// online policy can reach, which makes it the natural yardstick for the
/// paper's `H` parameter.
#[derive(Debug, Default, Clone)]
pub struct Belady {
    /// For each task, the sorted positions where it is called.
    occurrences: HashMap<TaskId, Vec<usize>>,
}

impl Belady {
    /// Creates the policy (feed it the trace with `observe_trace`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the first use of `task` strictly after `index`, or `None`.
    fn next_use(&self, task: TaskId, index: usize) -> Option<usize> {
        let occ = self.occurrences.get(&task)?;
        let pos = occ.partition_point(|&p| p <= index);
        occ.get(pos).copied()
    }
}

impl Policy for Belady {
    fn name(&self) -> &'static str {
        "belady"
    }

    fn observe_trace(&mut self, trace: &[TaskId]) {
        self.occurrences.clear();
        for (i, &t) in trace.iter().enumerate() {
            self.occurrences.entry(t).or_default().push(i);
        }
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, index: usize) -> usize {
        (0..cache.slot_count())
            .max_by_key(|&s| match cache.occupant(s) {
                // Never used again: infinitely far.
                Some(t) => self.next_use(t, index).unwrap_or(usize::MAX),
                None => usize::MAX,
            })
            .expect("cache has at least one slot")
    }

    fn on_access(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    fn delta_state(&self) -> Option<Vec<u8>> {
        // All of Belady's state is rebuilt by `observe_trace`, which
        // the restore path always replays first — nothing to encode.
        Some(Vec::new())
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        state.is_empty()
    }

    fn delta_prefix_safe(&self) -> bool {
        // Clairvoyant: victim choices consult *future* occurrences, so
        // a memoized prefix is invalid under any different future. A
        // skeleton may only be reused when the whole trace matches.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_farthest_future_use() {
        let trace = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(0), TaskId(1)];
        let mut p = Belady::new();
        p.observe_trace(&trace);
        let mut c = ConfigCache::new(2);
        c.load(0, TaskId(0)); // next use at 3
        c.load(1, TaskId(1)); // next use at 4
                              // At call index 2 (task 2 arrives): evict task 1 (used later).
        assert_eq!(p.choose_victim(&c, TaskId(2), 2), 1);
    }

    #[test]
    fn never_reused_tasks_are_preferred_victims() {
        let trace = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(0)];
        let mut p = Belady::new();
        p.observe_trace(&trace);
        let mut c = ConfigCache::new(2);
        c.load(0, TaskId(0)); // reused at 3
        c.load(1, TaskId(1)); // never again
        assert_eq!(p.choose_victim(&c, TaskId(2), 1), 1);
    }
}
