//! Least-recently-used replacement.

use crate::cache::{ConfigCache, TaskId};
use crate::policy::Policy;
use hprc_obs::delta::bytes as dbytes;

/// Evicts the slot whose configuration was *accessed* longest ago.
#[derive(Debug, Default, Clone)]
pub struct Lru {
    last_access: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, slots: usize) {
        if self.last_access.len() < slots {
            self.last_access.resize(slots, 0);
        }
    }
}

impl Policy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        self.ensure(cache.slot_count());
        (0..cache.slot_count())
            .min_by_key(|&s| self.last_access[s])
            .expect("cache has at least one slot")
    }

    fn on_access(&mut self, _task: TaskId, slot: usize, _index: usize) {
        self.ensure(slot + 1);
        self.clock += 1;
        self.last_access[slot] = self.clock;
    }

    fn delta_state(&self) -> Option<Vec<u8>> {
        let mut v = Vec::with_capacity(16 + 8 * self.last_access.len());
        dbytes::put_u64(&mut v, self.clock);
        dbytes::put_u64(&mut v, self.last_access.len() as u64);
        for &t in &self.last_access {
            dbytes::put_u64(&mut v, t);
        }
        Some(v)
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let mut pos = 0;
        let (Some(clock), Some(n)) = (
            dbytes::get_u64(state, &mut pos),
            dbytes::get_u64(state, &mut pos),
        ) else {
            return false;
        };
        let mut last = Vec::with_capacity(n as usize);
        for _ in 0..n {
            match dbytes::get_u64(state, &mut pos) {
                Some(t) => last.push(t),
                None => return false,
            }
        }
        if pos != state.len() {
            return false;
        }
        self.clock = clock;
        self.last_access = last;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recent() {
        let mut p = Lru::new();
        let mut c = ConfigCache::new(3);
        for (i, t) in [(0usize, 1usize), (1, 2), (2, 3)] {
            c.load(i, TaskId(t));
            p.on_access(TaskId(t), i, i);
        }
        // Touch slot 0 again: slot 1 becomes LRU.
        p.on_access(TaskId(1), 0, 3);
        assert_eq!(p.choose_victim(&c, TaskId(4), 4), 1);
    }
}
