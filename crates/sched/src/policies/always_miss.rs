//! The paper's experimental baseline: no prefetching, every call
//! reconfigures.

use crate::cache::{ConfigCache, TaskId};
use crate::policy::Policy;
use hprc_obs::delta::bytes as dbytes;

/// Forces a (re-)configuration on every call: `H = 0`, `M = 1`,
/// `T_decision = 0` — exactly the setup measured on Cray XD1 (section 4.3).
/// Victims rotate round-robin over the PRR slots.
#[derive(Debug, Default, Clone)]
pub struct AlwaysMiss {
    next_slot: usize,
}

impl AlwaysMiss {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for AlwaysMiss {
    fn name(&self) -> &'static str {
        "always-miss"
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        let slot = self.next_slot % cache.slot_count();
        self.next_slot = (self.next_slot + 1) % cache.slot_count();
        slot
    }

    fn on_access(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    fn forces_miss(&self) -> bool {
        true
    }

    fn delta_state(&self) -> Option<Vec<u8>> {
        let mut v = Vec::with_capacity(8);
        dbytes::put_u64(&mut v, self.next_slot as u64);
        Some(v)
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let mut pos = 0;
        let Some(next) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        if pos != state.len() {
            return false;
        }
        self.next_slot = next as usize;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_victims() {
        let mut p = AlwaysMiss::new();
        let c = ConfigCache::new(2);
        assert_eq!(p.choose_victim(&c, TaskId(0), 0), 0);
        assert_eq!(p.choose_victim(&c, TaskId(1), 1), 1);
        assert_eq!(p.choose_victim(&c, TaskId(2), 2), 0);
    }

    #[test]
    fn always_forces_miss() {
        assert!(AlwaysMiss::new().forces_miss());
        assert_eq!(AlwaysMiss::new().decision_latency_s(), 0.0);
    }
}
