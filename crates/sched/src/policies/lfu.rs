//! Least-frequently-used replacement.

use std::collections::HashMap;

use crate::cache::{ConfigCache, TaskId};
use crate::policy::Policy;
use hprc_obs::delta::bytes as dbytes;

/// Evicts the resident configuration with the fewest lifetime accesses.
/// Ties break toward the lowest slot index.
#[derive(Debug, Default, Clone)]
pub struct Lfu {
    counts: HashMap<TaskId, u64>,
}

impl Lfu {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        (0..cache.slot_count())
            .min_by_key(|&s| {
                cache
                    .occupant(s)
                    .map(|t| self.counts.get(&t).copied().unwrap_or(0))
                    .unwrap_or(0)
            })
            .expect("cache has at least one slot")
    }

    fn on_access(&mut self, task: TaskId, _slot: usize, _index: usize) {
        *self.counts.entry(task).or_insert(0) += 1;
    }

    fn delta_state(&self) -> Option<Vec<u8>> {
        // Canonical order: sorted by task id (HashMap iteration order
        // must never leak into cache keys).
        let mut entries: Vec<(TaskId, u64)> = self.counts.iter().map(|(t, c)| (*t, *c)).collect();
        entries.sort_unstable();
        let mut v = Vec::with_capacity(8 + 16 * entries.len());
        dbytes::put_u64(&mut v, entries.len() as u64);
        for (t, c) in entries {
            dbytes::put_u64(&mut v, t.0 as u64);
            dbytes::put_u64(&mut v, c);
        }
        Some(v)
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let mut pos = 0;
        let Some(n) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let mut counts = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            let (Some(t), Some(c)) = (
                dbytes::get_u64(state, &mut pos),
                dbytes::get_u64(state, &mut pos),
            ) else {
                return false;
            };
            counts.insert(TaskId(t as usize), c);
        }
        if pos != state.len() {
            return false;
        }
        self.counts = counts;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequent() {
        let mut p = Lfu::new();
        let mut c = ConfigCache::new(2);
        c.load(0, TaskId(1));
        c.load(1, TaskId(2));
        for i in 0..5 {
            p.on_access(TaskId(1), 0, i);
        }
        p.on_access(TaskId(2), 1, 5);
        assert_eq!(p.choose_victim(&c, TaskId(3), 6), 1);
    }
}
