//! First-order Markov next-task prediction with LRU replacement — an
//! online stand-in for the association-rule configuration caching the paper
//! cites as reference [26].

use std::collections::HashMap;

use crate::cache::{ConfigCache, TaskId};
use crate::policies::Lru;
use crate::policy::Policy;
use hprc_obs::delta::bytes as dbytes;

/// Learns the task-call transition matrix online; predicts the most
/// frequent successor of the current task as a prefetch hint, and replaces
/// via LRU. Its decision latency is configurable to study the paper's
/// `X_decision` sensitivity.
#[derive(Debug, Default, Clone)]
pub struct Markov {
    transitions: HashMap<TaskId, HashMap<TaskId, u64>>,
    previous: Option<TaskId>,
    lru: Lru,
    decision_latency_s: f64,
}

impl Markov {
    /// Creates the predictor with zero decision latency.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the predictor with the given decision latency (seconds).
    pub fn with_decision_latency(decision_latency_s: f64) -> Self {
        Markov {
            decision_latency_s,
            ..Self::default()
        }
    }
}

impl Policy for Markov {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn decision_latency_s(&self) -> f64 {
        self.decision_latency_s
    }

    fn choose_victim(&mut self, cache: &ConfigCache, task: TaskId, index: usize) -> usize {
        self.lru.choose_victim(cache, task, index)
    }

    fn on_access(&mut self, task: TaskId, slot: usize, index: usize) {
        if let Some(prev) = self.previous {
            *self
                .transitions
                .entry(prev)
                .or_default()
                .entry(task)
                .or_insert(0) += 1;
        }
        self.previous = Some(task);
        self.lru.on_access(task, slot, index);
    }

    fn predict_next(&self, current: TaskId) -> Option<TaskId> {
        self.transitions.get(&current).and_then(|succ| {
            succ.iter()
                // Deterministic argmax: break count ties by task id.
                .max_by_key(|(t, c)| (**c, std::cmp::Reverse(t.0)))
                .map(|(t, _)| *t)
        })
    }

    fn delta_state(&self) -> Option<Vec<u8>> {
        let mut v = Vec::new();
        // Configuration first so differently-tuned instances never
        // share a cache key, then mutable state in canonical order.
        dbytes::put_f64(&mut v, self.decision_latency_s);
        match self.previous {
            Some(t) => {
                dbytes::put_u64(&mut v, 1);
                dbytes::put_u64(&mut v, t.0 as u64);
            }
            None => dbytes::put_u64(&mut v, 0),
        }
        dbytes::put_slice(&mut v, &self.lru.delta_state()?);
        let mut ants: Vec<&TaskId> = self.transitions.keys().collect();
        ants.sort_unstable();
        dbytes::put_u64(&mut v, ants.len() as u64);
        for ant in ants {
            dbytes::put_u64(&mut v, ant.0 as u64);
            let succ = &self.transitions[ant];
            let mut rows: Vec<(TaskId, u64)> = succ.iter().map(|(t, c)| (*t, *c)).collect();
            rows.sort_unstable();
            dbytes::put_u64(&mut v, rows.len() as u64);
            for (t, c) in rows {
                dbytes::put_u64(&mut v, t.0 as u64);
                dbytes::put_u64(&mut v, c);
            }
        }
        Some(v)
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let mut pos = 0;
        let Some(latency) = dbytes::get_f64(state, &mut pos) else {
            return false;
        };
        let previous = match dbytes::get_u64(state, &mut pos) {
            Some(0) => None,
            Some(1) => match dbytes::get_u64(state, &mut pos) {
                Some(t) => Some(TaskId(t as usize)),
                None => return false,
            },
            _ => return false,
        };
        let Some(lru_len) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let Some(lru_bytes) = state.get(pos..pos + lru_len as usize) else {
            return false;
        };
        let mut lru = Lru::new();
        if !lru.delta_restore(lru_bytes) {
            return false;
        }
        pos += lru_len as usize;
        let Some(n_ants) = dbytes::get_u64(state, &mut pos) else {
            return false;
        };
        let mut transitions: HashMap<TaskId, HashMap<TaskId, u64>> = HashMap::new();
        for _ in 0..n_ants {
            let (Some(ant), Some(n_succ)) = (
                dbytes::get_u64(state, &mut pos),
                dbytes::get_u64(state, &mut pos),
            ) else {
                return false;
            };
            let mut succ = HashMap::with_capacity(n_succ as usize);
            for _ in 0..n_succ {
                let (Some(t), Some(c)) = (
                    dbytes::get_u64(state, &mut pos),
                    dbytes::get_u64(state, &mut pos),
                ) else {
                    return false;
                };
                succ.insert(TaskId(t as usize), c);
            }
            transitions.insert(TaskId(ant as usize), succ);
        }
        if pos != state.len() {
            return false;
        }
        self.decision_latency_s = latency;
        self.previous = previous;
        self.lru = lru;
        self.transitions = transitions;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_repeating_sequence() {
        let mut p = Markov::new();
        // Feed A B C A B C ...
        let seq = [0usize, 1, 2, 0, 1, 2, 0, 1, 2];
        for (i, &t) in seq.iter().enumerate() {
            p.on_access(TaskId(t), t % 2, i);
        }
        assert_eq!(p.predict_next(TaskId(0)), Some(TaskId(1)));
        assert_eq!(p.predict_next(TaskId(1)), Some(TaskId(2)));
        assert_eq!(p.predict_next(TaskId(2)), Some(TaskId(0)));
    }

    #[test]
    fn no_prediction_before_any_evidence() {
        let p = Markov::new();
        assert_eq!(p.predict_next(TaskId(0)), None);
    }

    #[test]
    fn decision_latency_configurable() {
        assert_eq!(Markov::new().decision_latency_s(), 0.0);
        assert_eq!(
            Markov::with_decision_latency(1e-5).decision_latency_s(),
            1e-5
        );
    }
}
