//! Concrete replacement/prefetch policies.
//!
//! * [`AlwaysMiss`] — the paper's experimental baseline (`H = 0`, `M = 1`);
//! * [`Fifo`], [`Lru`], [`Lfu`], [`RandomPolicy`] — classic replacement;
//! * [`Belady`] — the clairvoyant optimum (upper-bounds every policy);
//! * [`Markov`] — first-order next-task predictor with prefetching;
//! * [`AssociationRule`] — windowed co-occurrence mining with confidence
//!   thresholds, after the ARM-based configuration caching of the paper's
//!   reference [26].

mod always_miss;
mod assoc;
mod belady;
mod fifo;
mod lfu;
mod lru;
mod markov;
mod random;

pub use always_miss::AlwaysMiss;
pub use assoc::AssociationRule;
pub use belady::Belady;
pub use fifo::Fifo;
pub use lfu::Lfu;
pub use lru::Lru;
pub use markov::Markov;
pub use random::RandomPolicy;
