//! Seeded random replacement.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cache::{ConfigCache, TaskId};
use crate::policy::Policy;
use hprc_obs::delta::bytes as dbytes;

/// Evicts a uniformly random slot (deterministic per seed).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: ChaCha8Rng,
}

impl RandomPolicy {
    /// Creates the policy with a seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        self.rng.gen_range(0..cache.slot_count())
    }

    fn on_access(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    fn delta_state(&self) -> Option<Vec<u8>> {
        // The generator's raw state words capture its exact position
        // in the draw sequence — restoring them resumes it.
        let mut v = Vec::with_capacity(32);
        for w in self.rng.state_words() {
            dbytes::put_u64(&mut v, w);
        }
        Some(v)
    }

    fn delta_restore(&mut self, state: &[u8]) -> bool {
        let mut pos = 0;
        let mut words = [0u64; 4];
        for w in &mut words {
            match dbytes::get_u64(state, &mut pos) {
                Some(x) => *w = x,
                None => return false,
            }
        }
        if pos != state.len() {
            return false;
        }
        match ChaCha8Rng::from_state_words(words) {
            Some(rng) => {
                self.rng = rng;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let c = ConfigCache::new(4);
        let mut a = RandomPolicy::new(9);
        let mut b = RandomPolicy::new(9);
        for i in 0..20 {
            assert_eq!(
                a.choose_victim(&c, TaskId(0), i),
                b.choose_victim(&c, TaskId(0), i)
            );
        }
    }

    #[test]
    fn victims_in_range() {
        let c = ConfigCache::new(3);
        let mut p = RandomPolicy::new(1);
        for i in 0..100 {
            assert!(p.choose_victim(&c, TaskId(0), i) < 3);
        }
    }
}
