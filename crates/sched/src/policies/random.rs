//! Seeded random replacement.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cache::{ConfigCache, TaskId};
use crate::policy::Policy;

/// Evicts a uniformly random slot (deterministic per seed).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: ChaCha8Rng,
}

impl RandomPolicy {
    /// Creates the policy with a seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        self.rng.gen_range(0..cache.slot_count())
    }

    fn on_access(&mut self, _task: TaskId, _slot: usize, _index: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let c = ConfigCache::new(4);
        let mut a = RandomPolicy::new(9);
        let mut b = RandomPolicy::new(9);
        for i in 0..20 {
            assert_eq!(
                a.choose_victim(&c, TaskId(0), i),
                b.choose_victim(&c, TaskId(0), i)
            );
        }
    }

    #[test]
    fn victims_in_range() {
        let c = ConfigCache::new(3);
        let mut p = RandomPolicy::new(1);
        for i in 0..100 {
            assert!(p.choose_victim(&c, TaskId(0), i) < 3);
        }
    }
}
