//! Cache simulation: runs a task-call trace through a PRR cache under a
//! policy and measures the achieved hit ratio `H` — turning the model's
//! free parameter into a measured quantity.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, ConfigCache, TaskId};
use crate::policy::Policy;

/// Outcome of one task call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallOutcome {
    /// Configuration was resident; no reconfiguration needed (Figure 4(b)).
    Hit {
        /// Slot holding the configuration.
        slot: usize,
    },
    /// Configuration was absent (or the policy forces reconfiguration);
    /// a partial reconfiguration was charged (Figure 4(a)).
    Miss {
        /// Slot the configuration was loaded into.
        slot: usize,
        /// Configuration evicted to make room, if any.
        evicted: Option<TaskId>,
    },
}

impl CallOutcome {
    /// Whether this call was a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, CallOutcome::Hit { .. })
    }
}

/// Result of a cache simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Aggregate statistics.
    pub stats: CacheStats,
    /// Per-call outcomes, in trace order.
    pub outcomes: Vec<CallOutcome>,
}

impl SimulationOutcome {
    /// The measured hit ratio `H`.
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }
}

/// Runs `trace` through a cache of `slots` PRRs under `policy`.
///
/// When `prefetch` is true, the policy's [`Policy::predict_next`] hint is
/// used after every call to speculatively load the predicted next task into
/// a victim slot (never the slot of the task that just ran — it is still
/// executing while the prefetch would proceed, exactly the overlap of
/// Figure 4(b)).
///
/// Per-policy cache metrics go to `ctx.registry`
/// ([`ExecCtx::default`](hprc_ctx::ExecCtx::default) records nothing).
/// Instruments are namespaced by the policy's [`Policy::name`], so one
/// registry can hold several policies side by side:
///
/// * counters `sched.{policy}.calls` / `.hits` / `.misses` /
///   `.evictions` / `.prefetch_loads` / `.useful_prefetches`;
/// * gauge `sched.{policy}.hit_ratio` — the measured `H` that feeds the
///   analytical model's equation (5).
///
/// ```
/// use hprc_ctx::ExecCtx;
/// use hprc_sched::policies::Lru;
/// use hprc_sched::simulate::simulate;
/// use hprc_sched::TaskId;
///
/// // Two tasks alternating over two PRRs: cold misses, then all hits.
/// let trace: Vec<TaskId> = (0..10).map(|i| TaskId(i % 2)).collect();
/// let outcome = simulate(&trace, 2, &mut Lru::new(), false, &ExecCtx::default());
/// assert_eq!(outcome.stats.misses, 2);
/// assert_eq!(outcome.stats.hits, 8);
/// ```
pub fn simulate(
    trace: &[TaskId],
    slots: usize,
    policy: &mut dyn Policy,
    prefetch: bool,
    ctx: &hprc_ctx::ExecCtx,
) -> SimulationOutcome {
    let registry = &ctx.registry;
    let _span = registry.span("sched.simulate");
    let j = &ctx.journal;
    let js = j.enter("sched.simulate", 0, 0);
    // Budget hook: each call is one charged event. The refused tail is
    // dropped deterministically (same cutoff sequence on every rerun)
    // and tallied as would-have-run; an unlimited budget admits all.
    let admitted = ctx.budget.admit(trace.len());
    // Delta path: memoized skeletons replay shared prefixes of earlier
    // runs. Replays are byte-identical to longhand simulation, and all
    // recording below derives from the outcome alone, so the swap is
    // invisible to every artifact — including instrumented runs.
    let outcome = if ctx.delta.is_enabled() {
        crate::delta::simulate_clean_delta(&trace[..admitted], slots, policy, prefetch, &ctx.delta)
    } else {
        simulate_inner(&trace[..admitted], slots, policy, prefetch)
    };
    record_outcome(registry, policy.name(), &outcome);
    j.metric("sched.calls", outcome.stats.calls);
    j.metric("sched.hits", outcome.stats.hits);
    j.metric("sched.misses", outcome.stats.misses);
    j.exit(js, 0);
    outcome
}

/// Records one simulation's per-policy cache metrics (shared with the
/// fault-injecting [`simulate_faulty`](crate::faulty::simulate_faulty)).
pub(crate) fn record_outcome(
    registry: &hprc_obs::Registry,
    policy_name: &str,
    outcome: &SimulationOutcome,
) {
    if !registry.is_enabled() {
        return;
    }
    let prefix = format!("sched.{policy_name}");
    let s = &outcome.stats;
    registry.counter(&format!("{prefix}.calls")).add(s.calls);
    registry.counter(&format!("{prefix}.hits")).add(s.hits);
    registry.counter(&format!("{prefix}.misses")).add(s.misses);
    let evictions = outcome
        .outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                CallOutcome::Miss {
                    evicted: Some(_),
                    ..
                }
            )
        })
        .count() as u64;
    registry
        .counter(&format!("{prefix}.evictions"))
        .add(evictions);
    registry
        .counter(&format!("{prefix}.prefetch_loads"))
        .add(s.prefetch_loads);
    registry
        .counter(&format!("{prefix}.useful_prefetches"))
        .add(s.useful_prefetches);
    registry
        .gauge(&format!("{prefix}.hit_ratio"))
        .set(outcome.hit_ratio());
}

/// The resumable core of a clean simulation: all mutable run state in
/// one struct, advanced one call at a time. The delta layer
/// ([`crate::delta`]) snapshots and restores it mid-trace; the plain
/// path just drives it start to finish.
pub(crate) struct CleanSim {
    pub(crate) cache: ConfigCache,
    pub(crate) stats: CacheStats,
    pub(crate) outcomes: Vec<CallOutcome>,
    pub(crate) speculative: HashSet<TaskId>,
}

impl CleanSim {
    pub(crate) fn new(slots: usize) -> Self {
        CleanSim {
            cache: ConfigCache::new(slots),
            stats: CacheStats::default(),
            outcomes: Vec::new(),
            speculative: HashSet::new(),
        }
    }

    /// Processes call `i` of the trace (task `task`).
    pub(crate) fn step(&mut self, i: usize, task: TaskId, policy: &mut dyn Policy, prefetch: bool) {
        self.stats.calls += 1;
        let resident_slot = self.cache.slot_of(task);
        let outcome = match resident_slot {
            Some(slot) if !policy.forces_miss() => {
                self.stats.hits += 1;
                if self.speculative.remove(&task) {
                    self.stats.useful_prefetches += 1;
                }
                CallOutcome::Hit { slot }
            }
            _ => {
                self.stats.misses += 1;
                // A forced miss on a resident task reconfigures in place.
                let slot = resident_slot
                    .or_else(|| self.cache.empty_slot())
                    .unwrap_or_else(|| policy.choose_victim(&self.cache, task, i));
                let evicted = self.cache.load(slot, task);
                if let Some(e) = evicted {
                    self.speculative.remove(&e);
                }
                self.speculative.remove(&task);
                policy.on_load(task, slot, i);
                CallOutcome::Miss {
                    slot,
                    evicted: evicted.filter(|&e| e != task),
                }
            }
        };
        let slot = match outcome {
            CallOutcome::Hit { slot } | CallOutcome::Miss { slot, .. } => slot,
        };
        policy.on_access(task, slot, i);
        self.outcomes.push(outcome);

        if prefetch {
            if let Some(pred) = policy.predict_next(task) {
                if pred != task && !self.cache.contains(pred) {
                    let target = self
                        .cache
                        .empty_slot()
                        .unwrap_or_else(|| policy.choose_victim(&self.cache, pred, i));
                    // Never evict the task that is executing right now.
                    if Some(target) != self.cache.slot_of(task) {
                        if let Some(e) = self.cache.load(target, pred) {
                            self.speculative.remove(&e);
                        }
                        policy.on_load(pred, target, i);
                        self.stats.prefetch_loads += 1;
                        self.speculative.insert(pred);
                    }
                }
            }
        }
    }

    pub(crate) fn finish(self) -> SimulationOutcome {
        SimulationOutcome {
            stats: self.stats,
            outcomes: self.outcomes,
        }
    }
}

pub(crate) fn simulate_inner(
    trace: &[TaskId],
    slots: usize,
    policy: &mut dyn Policy,
    prefetch: bool,
) -> SimulationOutcome {
    let mut sim = CleanSim::new(slots);
    sim.outcomes.reserve(trace.len());
    policy.observe_trace(trace);
    for (i, &task) in trace.iter().enumerate() {
        sim.step(i, task, policy, prefetch);
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{AlwaysMiss, Belady, Lru, Markov};

    fn ids(v: &[usize]) -> Vec<TaskId> {
        v.iter().map(|&i| TaskId(i)).collect()
    }

    fn dctx() -> hprc_ctx::ExecCtx {
        hprc_ctx::ExecCtx::default()
    }

    #[test]
    fn always_miss_yields_h_zero() {
        let trace = ids(&[0, 1, 0, 1, 0, 1]);
        let out = simulate(&trace, 2, &mut AlwaysMiss::new(), false, &dctx());
        assert_eq!(out.stats.misses, 6);
        assert_eq!(out.hit_ratio(), 0.0);
    }

    #[test]
    fn lru_two_slots_two_tasks_hits_after_warmup() {
        let trace = ids(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let out = simulate(&trace, 2, &mut Lru::new(), false, &dctx());
        // Two cold misses, then all hits.
        assert_eq!(out.stats.misses, 2);
        assert_eq!(out.stats.hits, 6);
    }

    #[test]
    fn three_tasks_two_slots_round_robin_defeats_lru() {
        // Cyclic A B C with 2 slots: LRU misses every call (classic
        // pathological case).
        let trace = ids(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let out = simulate(&trace, 2, &mut Lru::new(), false, &dctx());
        assert_eq!(out.stats.hits, 0);
    }

    #[test]
    fn event_budget_truncates_the_trace_deterministically() {
        let trace = ids(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let run = || {
            let ctx = dctx().with_budget(hprc_obs::RunBudget::events(5));
            let out = simulate(&trace, 2, &mut Lru::new(), false, &ctx);
            (out.stats.calls, ctx.budget.cutoff_seq())
        };
        let (calls, cutoff) = run();
        assert_eq!(calls, 5, "only the admitted prefix runs");
        assert_eq!(cutoff, Some(6), "first refusal is charge 6");
        assert_eq!(run(), (calls, cutoff), "same cutoff on every rerun");
        // The admitted prefix behaves exactly like the shorter trace.
        let whole = simulate(&trace[..5], 2, &mut Lru::new(), false, &dctx());
        assert_eq!(whole.stats.hits, 3);
    }

    #[test]
    fn belady_beats_lru_on_cyclic_trace() {
        let trace = ids(&[0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let lru = simulate(&trace, 2, &mut Lru::new(), false, &dctx());
        let opt = simulate(&trace, 2, &mut Belady::new(), false, &dctx());
        assert!(opt.stats.hits > lru.stats.hits);
    }

    #[test]
    fn markov_prefetch_learns_cycle() {
        // A B A B ... with 2 slots and prefetching: after the transition
        // table warms up, the predictor always preloads the other task.
        let trace = ids(&[0, 1].repeat(50));
        let out = simulate(&trace, 2, &mut Markov::new(), true, &dctx());
        assert!(out.hit_ratio() > 0.9, "H = {}", out.hit_ratio());
        assert!(out.stats.useful_prefetches <= out.stats.prefetch_loads);
    }

    #[test]
    fn markov_prefetch_on_three_task_cycle_two_slots() {
        // A B C cycling through 2 slots defeats pure LRU entirely, but a
        // perfect next-task prefetcher hides most misses.
        let trace = ids(&[0, 1, 2].repeat(100));
        let plain = simulate(&trace, 2, &mut Lru::new(), false, &dctx());
        let pf = simulate(&trace, 2, &mut Markov::new(), true, &dctx());
        assert_eq!(plain.stats.hits, 0);
        assert!(pf.hit_ratio() > 0.5, "prefetching H = {}", pf.hit_ratio());
    }

    #[test]
    fn hits_plus_misses_equals_calls() {
        let trace = ids(&[0, 3, 1, 2, 0, 0, 2, 1, 3, 2]);
        let out = simulate(&trace, 2, &mut Lru::new(), true, &dctx());
        assert_eq!(out.stats.hits + out.stats.misses, out.stats.calls);
        assert_eq!(out.outcomes.len(), trace.len());
        let hits = out.outcomes.iter().filter(|o| o.is_hit()).count() as u64;
        assert_eq!(hits, out.stats.hits);
    }

    #[test]
    fn single_slot_cache_works() {
        let trace = ids(&[0, 0, 1, 1, 0]);
        let out = simulate(&trace, 1, &mut Lru::new(), false, &dctx());
        assert_eq!(out.stats.hits, 2);
        assert_eq!(out.stats.misses, 3);
    }

    #[test]
    fn instrumented_simulation_measures_h_per_policy() {
        let trace = ids(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let ctx = dctx().with_registry(hprc_obs::Registry::new());
        let lru = simulate(&trace, 2, &mut Lru::new(), false, &ctx);
        let miss = simulate(&trace, 2, &mut AlwaysMiss::new(), false, &ctx);
        let snap = ctx.registry.snapshot();

        // Per-policy namespacing keeps both measurements side by side.
        assert_eq!(snap.counters["sched.lru.calls"], 8);
        assert_eq!(snap.counters["sched.lru.hits"], 6);
        assert_eq!(snap.counters["sched.lru.misses"], 2);
        assert_eq!(snap.counters["sched.always-miss.misses"], 8);

        // The gauge is the measured H — identical to the outcome's.
        assert_eq!(snap.gauges["sched.lru.hit_ratio"], lru.hit_ratio());
        assert_eq!(snap.gauges["sched.always-miss.hit_ratio"], miss.hit_ratio());

        // Counter-derived H equals the outcome-derived H exactly.
        let h = snap.counters["sched.lru.hits"] as f64 / snap.counters["sched.lru.calls"] as f64;
        assert_eq!(h, lru.hit_ratio());
    }

    #[test]
    fn instrumentation_does_not_change_outcomes() {
        let trace = ids(&[0, 1, 2].repeat(20));
        let plain = simulate(&trace, 2, &mut Belady::new(), false, &dctx());
        let traced = simulate(
            &trace,
            2,
            &mut Belady::new(),
            false,
            &dctx().with_registry(hprc_obs::Registry::new()),
        );
        assert_eq!(plain, traced);
    }

    #[test]
    fn eviction_counter_matches_outcomes() {
        let trace = ids(&[0, 1, 2, 0, 1, 2]);
        let ctx = dctx().with_registry(hprc_obs::Registry::new());
        let out = simulate(&trace, 2, &mut Lru::new(), false, &ctx);
        let evictions = out
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    CallOutcome::Miss {
                        evicted: Some(_),
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(
            ctx.registry.snapshot().counters["sched.lru.evictions"],
            evictions
        );
        assert!(evictions > 0);
    }
}
