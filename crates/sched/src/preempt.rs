//! The preemptible execution engine: an event-driven scheduler that can
//! checkpoint a running task out of its PRR at PR-safe points and
//! restore it later, generalizing the run-to-completion
//! [`simulate`](crate::simulate::simulate)/[`simulate_faulty`](crate::faulty::simulate_faulty)
//! loops.
//!
//! The paper's bounds (Eq 5/7) assume a task, once configured, runs to
//! completion. Preemption via partial reconfiguration breaks that
//! assumption: a PRR's live context can be read back over the same
//! ICAP/API path a bitstream travels, the region reclaimed for a more
//! urgent task, and the context written back later. Both transfers are
//! priced exactly like bitstream transfers — a context of `state_bytes`
//! takes `state_bytes / port_bytes_per_s` on the configuration port,
//! serialized with every other transfer ([`PreemptCosts`]).
//!
//! Dispatch order comes from the generalized [`Policy`] trait:
//! [`Policy::ranks_above`] orders released jobs (strict priority, EDF)
//! and [`Policy::preemptive`] opts a policy into checkpointing. The
//! engine is a discrete-event loop over integer nanoseconds, so its
//! output — a list of [`ScheduleSegment`]s with explicit windows — is
//! bit-deterministic and replayable by the `hprc-sim` renderer.
//!
//! Fault threading: configuration transfers draw fates from
//! [`FaultState::on_miss`]; context write-backs draw from the
//! independent [`FaultState::on_restore`] stream. A preempted-then-
//! faulted job either restores (clean or after retries) or escalates
//! deterministically: an escalated restore ends in a full
//! reconfiguration that reloads the bitstream fresh, so the checkpoint
//! is lost and the job restarts from zero progress. A dropped transfer
//! kills the job (counted as both a drop and a deadline miss).

use serde::{Deserialize, Serialize};

use hprc_fault::{FaultPlan, FaultState};

use crate::cache::{ConfigCache, TaskId};
use crate::policy::{JobView, Policy};

/// One periodic real-time task of the workload: `frames` jobs released
/// every `period_s` starting at `phase_s`, each needing `exec_s` of
/// uninterrupted-equivalent PRR time before `deadline_s` after release.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtTask {
    /// The hardware task (module library index) each frame instantiates.
    pub task: TaskId,
    /// Pure execution time of one frame, seconds.
    pub exec_s: f64,
    /// Release period, seconds.
    pub period_s: f64,
    /// Relative deadline (after release), seconds.
    pub deadline_s: f64,
    /// Static priority; lower numbers are more urgent.
    pub priority: u32,
    /// Live context size read back on checkpoint / written back on
    /// restore, bytes.
    pub state_bytes: u64,
    /// Number of frames (jobs) released.
    pub frames: usize,
    /// Release offset of frame 0, seconds.
    pub phase_s: f64,
}

/// The context-save/restore cost model. Checkpoint and restore
/// transfers ride the configuration port and are priced like bitstream
/// transfers: `state_bytes / port_bytes_per_s` seconds each, serialized
/// with configuration transfers on the same port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptCosts {
    /// Decision latency `T_decision` charged at each dispatch, seconds.
    pub t_decision_s: f64,
    /// Control/activation latency `T_control`, seconds.
    pub t_control_s: f64,
    /// Clean partial-reconfiguration transfer time `T_PRTR`, seconds.
    pub t_partial_s: f64,
    /// Clean full-reconfiguration transfer time `T_FRTR`, seconds.
    pub t_full_s: f64,
    /// PR-safe checkpoint granularity: a running job may only be
    /// suspended at `exec_start + k * quantum_s`, seconds.
    pub quantum_s: f64,
    /// Configuration-port bandwidth used for both context readback and
    /// write-back, bytes per second. Must be positive.
    pub port_bytes_per_s: f64,
}

impl PreemptCosts {
    /// Context-save (readback) time for a `state_bytes` checkpoint.
    pub fn save_s(&self, state_bytes: u64) -> f64 {
        state_bytes as f64 / self.port_bytes_per_s
    }

    /// Context-restore (write-back) time for a `state_bytes` checkpoint.
    pub fn restore_s(&self, state_bytes: u64) -> f64 {
        state_bytes as f64 / self.port_bytes_per_s
    }
}

/// Lifecycle state of one job (frame) in the preemptible engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskState {
    /// Released, waiting for a PRR.
    Ready,
    /// Executing in a PRR.
    Running {
        /// The PRR slot the job occupies.
        slot: usize,
    },
    /// Checkpointed out of its PRR; context lives in host memory.
    Preempted {
        /// Fraction of `exec_s` completed before the checkpoint.
        progress: f64,
        /// Time the context readback took, seconds.
        saved_state_s: f64,
    },
    /// Finished.
    Done,
    /// Killed by an unrecoverable transfer fault.
    Dropped,
}

/// A half-open `[start_ns, end_ns)` window on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Window start, nanoseconds.
    pub start_ns: u64,
    /// Window end, nanoseconds.
    pub end_ns: u64,
}

impl Window {
    /// Window length in nanoseconds.
    pub fn len_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One dispatch of one job onto one PRR, with every window the
/// `hprc-sim` renderer needs, in absolute nanoseconds. Segments are
/// emitted in dispatch order, so `decision.start_ns` is monotone
/// non-decreasing across the vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSegment {
    /// The task dispatched.
    pub task: TaskId,
    /// Which frame (job) of the task.
    pub frame: u32,
    /// The PRR slot used.
    pub slot: usize,
    /// Decision window (`T_decision`).
    pub decision: Window,
    /// Configuration transfer window (absent on a hit). Covers the
    /// whole fault chain; the first `config_clean_ns` are the nominal
    /// transfer, the excess is recovery.
    pub config: Option<Window>,
    /// Clean prefix of `config` in nanoseconds.
    pub config_clean_ns: u64,
    /// Context write-back window (present when `resumed`). Covers the
    /// whole fault chain like `config`.
    pub restore: Option<Window>,
    /// Clean prefix of `restore` in nanoseconds.
    pub restore_clean_ns: u64,
    /// Control/activation window (`T_control`); zero-length when the
    /// job was dropped before activation.
    pub control: Window,
    /// Execution window; zero-length when dropped. Ends early (at the
    /// checkpoint instant) when `preempted`.
    pub exec: Window,
    /// Context readback window (present when `preempted`).
    pub save: Option<Window>,
    /// The configuration was already resident: no transfer charged.
    pub hit: bool,
    /// The transfer ran the full-reconfiguration chain because the
    /// target (or every) PRR was blacklisted.
    pub forced_full: bool,
    /// This segment resumes a previously checkpointed job.
    pub resumed: bool,
    /// This segment ends in a checkpoint (`save` present).
    pub preempted: bool,
    /// An unrecoverable transfer fault killed the job in this segment.
    pub dropped: bool,
    /// No recovery excess anywhere in this segment (all transfers were
    /// first-attempt clean).
    pub clean: bool,
}

impl ScheduleSegment {
    /// Instant the segment begins (its decision window).
    pub fn start_ns(&self) -> u64 {
        self.decision.start_ns
    }

    /// Instant the segment's last window closes.
    pub fn end_ns(&self) -> u64 {
        let mut end = self.control.end_ns.max(self.exec.end_ns);
        if let Some(w) = self.config {
            end = end.max(w.end_ns);
        }
        if let Some(w) = self.restore {
            end = end.max(w.end_ns);
        }
        if let Some(w) = self.save {
            end = end.max(w.end_ns);
        }
        end.max(self.decision.end_ns)
    }
}

/// Final accounting for one job (frame).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The task this job instantiates.
    pub task: TaskId,
    /// Frame index within the task.
    pub frame: u32,
    /// Release instant, nanoseconds.
    pub release_ns: u64,
    /// Absolute deadline, nanoseconds.
    pub deadline_ns: u64,
    /// Completion instant (`None` when dropped).
    pub finish_ns: Option<u64>,
    /// Finished after its deadline, or never finished.
    pub missed: bool,
    /// Killed by an unrecoverable transfer fault.
    pub dropped: bool,
    /// Times the job was checkpointed out of a PRR.
    pub preemptions: u32,
    /// Context write-backs performed (clean or after retries).
    pub restores: u32,
    /// Restores that escalated to a full reconfiguration, losing the
    /// checkpoint and restarting the job from zero progress.
    pub escalated_restores: u32,
    /// Terminal lifecycle state ([`TaskState::Done`] or
    /// [`TaskState::Dropped`]).
    pub state: TaskState,
}

/// Aggregate statistics of one preemptive simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PreemptStats {
    /// Jobs released.
    pub jobs: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs killed by unrecoverable transfer faults.
    pub dropped: u64,
    /// Completed jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Checkpoints performed.
    pub preemptions: u64,
    /// Context write-backs performed.
    pub restores: u64,
    /// Restores that escalated to a full reconfiguration.
    pub escalated_restores: u64,
    /// Dispatches that found their configuration resident.
    pub hits: u64,
    /// Dispatches that charged a configuration transfer.
    pub misses: u64,
    /// Transfers forced onto the full-reconfiguration chain by
    /// blacklisting.
    pub forced_full: u64,
    /// Residents evicted by seeded SEU strikes.
    pub seu_invalidations: u64,
    /// Total context-readback time, nanoseconds.
    pub save_ns: u64,
    /// Total context-write-back time (incl. recovery), nanoseconds.
    pub restore_ns: u64,
    /// Instant the last window of the schedule closes, nanoseconds.
    pub makespan_ns: u64,
}

impl PreemptStats {
    /// Fraction of jobs that missed their deadline — finished late or
    /// never finished (dropped). Zero for an empty run.
    pub fn deadline_miss_ratio(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            (self.deadline_misses + self.dropped) as f64 / self.jobs as f64
        }
    }

    /// Configuration hit ratio `H` over dispatches (zero when nothing
    /// dispatched).
    pub fn hit_ratio(&self) -> f64 {
        let calls = self.hits + self.misses;
        if calls == 0 {
            0.0
        } else {
            self.hits as f64 / calls as f64
        }
    }

    /// Schedule makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }
}

/// Result of one preemptive simulation: the renderable schedule, the
/// per-job accounting, and the aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptOutcome {
    /// Dispatch segments in dispatch order (monotone start times).
    pub segments: Vec<ScheduleSegment>,
    /// Per-job records, in `(release, task, frame)` order.
    pub jobs: Vec<JobRecord>,
    /// Aggregates.
    pub stats: PreemptStats,
}

/// Strict-priority dispatch: jobs with numerically lower
/// [`RtTask::priority`] always run first, checkpointing lower-priority
/// jobs out of their PRRs when [`preemptive`](StrictPriority::new).
/// Victim slots for ordinary cache replacement rotate round-robin.
#[derive(Debug, Clone, Default)]
pub struct StrictPriority {
    non_preemptive: bool,
    rr: usize,
}

impl StrictPriority {
    /// The preemptive variant.
    pub fn new() -> Self {
        StrictPriority {
            non_preemptive: false,
            rr: 0,
        }
    }

    /// Same ranking, but running jobs are never checkpointed — the
    /// run-to-completion baseline.
    pub fn non_preemptive() -> Self {
        StrictPriority {
            non_preemptive: true,
            rr: 0,
        }
    }
}

impl Policy for StrictPriority {
    fn name(&self) -> &'static str {
        if self.non_preemptive {
            "priority-np"
        } else {
            "priority"
        }
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        let slot = self.rr % cache.slot_count();
        self.rr += 1;
        slot
    }

    fn on_access(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    fn ranks_above(&self, a: &JobView, b: &JobView) -> bool {
        a.priority < b.priority
    }

    fn preemptive(&self) -> bool {
        !self.non_preemptive
    }
}

/// Earliest-deadline-first dispatch: the job with the nearest absolute
/// deadline runs first, checkpointing later-deadline jobs when
/// [`preemptive`](Edf::new). Victim slots rotate round-robin.
#[derive(Debug, Clone, Default)]
pub struct Edf {
    non_preemptive: bool,
    rr: usize,
}

impl Edf {
    /// The preemptive variant.
    pub fn new() -> Self {
        Edf {
            non_preemptive: false,
            rr: 0,
        }
    }

    /// Same ranking without checkpointing.
    pub fn non_preemptive() -> Self {
        Edf {
            non_preemptive: true,
            rr: 0,
        }
    }
}

impl Policy for Edf {
    fn name(&self) -> &'static str {
        if self.non_preemptive {
            "edf-np"
        } else {
            "edf"
        }
    }

    fn choose_victim(&mut self, cache: &ConfigCache, _task: TaskId, _index: usize) -> usize {
        let slot = self.rr % cache.slot_count();
        self.rr += 1;
        slot
    }

    fn on_access(&mut self, _task: TaskId, _slot: usize, _index: usize) {}

    fn ranks_above(&self, a: &JobView, b: &JobView) -> bool {
        a.deadline_ns < b.deadline_ns
    }

    fn preemptive(&self) -> bool {
        !self.non_preemptive
    }
}

fn ns(s: f64) -> u64 {
    (s * 1e9).round() as u64
}

#[derive(Debug, Clone)]
struct Job {
    task: TaskId,
    frame: u32,
    priority: u32,
    release_ns: u64,
    deadline_ns: u64,
    exec_ns: u64,
    done_ns: u64,
    state_bytes: u64,
    state: TaskState,
    finish_ns: Option<u64>,
    preemptions: u32,
    restores: u32,
    escalated_restores: u32,
    dropped: bool,
}

impl Job {
    fn view(&self) -> JobView {
        JobView {
            task: self.task,
            priority: self.priority,
            deadline_ns: self.deadline_ns,
            release_ns: self.release_ns,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    job: usize,
    seg: usize,
    exec_start_ns: u64,
    exec_end_ns: u64,
    preempt_at_ns: Option<u64>,
}

/// Total dispatch order: the policy's strict ranking first, then the
/// deterministic `(release, task, frame)` tie-break.
fn rank_before(policy: &dyn Policy, a: &Job, b: &Job) -> bool {
    let (va, vb) = (a.view(), b.view());
    if policy.ranks_above(&va, &vb) {
        return true;
    }
    if policy.ranks_above(&vb, &va) {
        return false;
    }
    (a.release_ns, a.task.0, a.frame) < (b.release_ns, b.task.0, b.frame)
}

/// Runs the periodic workload through `n_slots` PRRs under `policy`,
/// with every transfer (configuration, context write-back) drawing its
/// fate from `plan` — pass [`FaultPlan::disarmed`] for a clean run.
///
/// The engine is an event-driven loop over integer nanoseconds:
/// releases, completions, and checkpoint instants are the events.
/// Preemption happens lazily at PR-safe points: when a waiting job
/// outranks a running one (per [`Policy::ranks_above`], and only if
/// [`Policy::preemptive`]), the victim is marked for checkpoint at its
/// next quantum boundary; if by then no waiting job still outranks it,
/// the mark is cancelled. All transfers serialize on one configuration
/// port. A full reconfiguration (escalation or blacklist degradation)
/// evicts every *idle* resident; jobs already executing run on —
/// detection is at the next configuration boundary, exactly as in
/// [`simulate_faulty`](crate::faulty::simulate_faulty).
///
/// Metrics go to `ctx.registry` under `sched.{policy}.preempt.*`; a
/// `sched.simulate_preemptive` span plus `sched.preempt.*` metric
/// deltas go to the journal.
///
/// # Panics
///
/// Panics when `n_slots == 0` or `costs.port_bytes_per_s <= 0`.
pub fn simulate_preemptive(
    tasks: &[RtTask],
    n_slots: usize,
    policy: &mut dyn Policy,
    costs: &PreemptCosts,
    plan: &FaultPlan,
    ctx: &hprc_ctx::ExecCtx,
) -> PreemptOutcome {
    assert!(n_slots > 0, "at least one PRR slot is required");
    assert!(
        costs.port_bytes_per_s > 0.0,
        "configuration-port bandwidth must be positive"
    );
    let registry = &ctx.registry;
    let _span = registry.span("sched.simulate_preemptive");
    let j = &ctx.journal;
    let js = j.enter("sched.simulate_preemptive", 0, 0);
    // Budget hook: each periodic task is one charged event, and the
    // refused tail of the task set is dropped whole — truncating at
    // frame granularity would leave half-executed hyperperiods. The
    // admitted run's simulated span is charged afterwards so sim-time
    // budgets see preemptive work too.
    let admitted = ctx.budget.admit(tasks.len());
    let outcome = simulate_preemptive_inner(&tasks[..admitted], n_slots, policy, costs, plan);
    if ctx.budget.is_limited() {
        let end_ns = outcome.jobs.iter().filter_map(|jb| jb.finish_ns).max();
        ctx.budget.try_charge(0, end_ns.unwrap_or(0));
    }
    record_preempt_outcome(registry, policy.name(), &outcome);
    j.metric("sched.preempt.jobs", outcome.stats.jobs);
    j.metric("sched.preempt.preemptions", outcome.stats.preemptions);
    j.metric("sched.preempt.restores", outcome.stats.restores);
    j.metric(
        "sched.preempt.deadline_misses",
        outcome.stats.deadline_misses,
    );
    j.metric("sched.preempt.dropped", outcome.stats.dropped);
    j.exit(js, 0);
    outcome
}

fn record_preempt_outcome(
    registry: &hprc_obs::Registry,
    policy_name: &str,
    outcome: &PreemptOutcome,
) {
    if !registry.is_enabled() {
        return;
    }
    let prefix = format!("sched.{policy_name}.preempt");
    let s = &outcome.stats;
    for (name, value) in [
        ("jobs", s.jobs),
        ("completed", s.completed),
        ("dropped", s.dropped),
        ("deadline_misses", s.deadline_misses),
        ("preemptions", s.preemptions),
        ("restores", s.restores),
        ("escalated_restores", s.escalated_restores),
        ("hits", s.hits),
        ("misses", s.misses),
        ("forced_full", s.forced_full),
        ("seu_invalidations", s.seu_invalidations),
    ] {
        registry.counter(&format!("{prefix}.{name}")).add(value);
    }
    registry
        .gauge(&format!("{prefix}.deadline_miss_ratio"))
        .set(s.deadline_miss_ratio());
    registry
        .gauge(&format!("{prefix}.hit_ratio"))
        .set(s.hit_ratio());
    registry
        .gauge(&format!("{prefix}.makespan_s"))
        .set(s.makespan_s());
}

fn simulate_preemptive_inner(
    tasks: &[RtTask],
    n_slots: usize,
    policy: &mut dyn Policy,
    costs: &PreemptCosts,
    plan: &FaultPlan,
) -> PreemptOutcome {
    let quantum_ns = ns(costs.quantum_s).max(1);
    let t_decision_ns = ns(costs.t_decision_s);
    let t_control_ns = ns(costs.t_control_s);

    // Expand the periodic tasks into jobs ordered by (release, task, frame).
    let mut jobs: Vec<Job> = Vec::new();
    for t in tasks {
        for f in 0..t.frames {
            let release_ns = ns(t.phase_s + f as f64 * t.period_s);
            jobs.push(Job {
                task: t.task,
                frame: f as u32,
                priority: t.priority,
                release_ns,
                deadline_ns: release_ns + ns(t.deadline_s),
                exec_ns: ns(t.exec_s).max(1),
                done_ns: 0,
                state_bytes: t.state_bytes,
                state: TaskState::Ready,
                finish_ns: None,
                preemptions: 0,
                restores: 0,
                escalated_restores: 0,
                dropped: false,
            });
        }
    }
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].release_ns, jobs[i].task.0, jobs[i].frame));

    let mut stats = PreemptStats {
        jobs: jobs.len() as u64,
        ..Default::default()
    };
    let mut segments: Vec<ScheduleSegment> = Vec::new();
    if jobs.is_empty() {
        return PreemptOutcome {
            segments,
            jobs: Vec::new(),
            stats,
        };
    }

    let mut cache = ConfigCache::new(n_slots);
    let mut fstate = FaultState::new(*plan, n_slots);
    let mut running: Vec<Option<Running>> = (0..n_slots).map(|_| None).collect();
    let mut slot_free_ns: Vec<u64> = vec![0; n_slots];
    let mut port_free_ns: u64 = 0;
    let mut ready: Vec<usize> = Vec::new();
    let mut next_release = 0usize;
    let mut call: u64 = 0;
    let mut now: u64 = jobs[order[0]].release_ns;

    loop {
        // Releases due.
        while next_release < order.len() && jobs[order[next_release]].release_ns <= now {
            ready.push(order[next_release]);
            next_release += 1;
        }

        // Checkpoints and completions due, in slot order.
        for s in 0..n_slots {
            let Some(r) = running[s] else { continue };
            if let Some(p) = r.preempt_at_ns {
                if p <= now {
                    let warranted = ready
                        .iter()
                        .any(|&b| policy.ranks_above(&jobs[b].view(), &jobs[r.job].view()));
                    if !warranted {
                        // The urgency passed (the waiter ran elsewhere):
                        // cancel the mark and run on.
                        running[s].as_mut().expect("occupied").preempt_at_ns = None;
                    } else {
                        // Checkpoint: stop at the PR-safe point, read the
                        // context back over the (serialized) port.
                        let save_len = ns(costs.save_s(jobs[r.job].state_bytes)).max(1);
                        let start = p.max(port_free_ns);
                        let win = Window {
                            start_ns: start,
                            end_ns: start + save_len,
                        };
                        port_free_ns = win.end_ns;
                        slot_free_ns[s] = win.end_ns;
                        let job = &mut jobs[r.job];
                        job.done_ns += p - r.exec_start_ns;
                        job.preemptions += 1;
                        job.state = TaskState::Preempted {
                            progress: job.done_ns as f64 / job.exec_ns as f64,
                            saved_state_s: save_len as f64 / 1e9,
                        };
                        let seg = &mut segments[r.seg];
                        seg.exec.end_ns = p;
                        seg.save = Some(win);
                        seg.preempted = true;
                        stats.preemptions += 1;
                        stats.save_ns += save_len;
                        ready.push(r.job);
                        running[s] = None;
                    }
                    continue;
                }
            }
            if r.exec_end_ns <= now {
                let job = &mut jobs[r.job];
                job.done_ns = job.exec_ns;
                job.finish_ns = Some(r.exec_end_ns);
                job.state = TaskState::Done;
                if r.exec_end_ns > job.deadline_ns {
                    stats.deadline_misses += 1;
                }
                stats.completed += 1;
                slot_free_ns[s] = slot_free_ns[s].max(r.exec_end_ns);
                running[s] = None;
            }
        }

        // Dispatch ready jobs into free, usable slots.
        loop {
            // One in-flight job per task: a module has one instance, so a
            // second frame waits for (or hits on) the first frame's PRR.
            let active = |t: TaskId| {
                (0..n_slots).any(|s| running[s].map(|r| jobs[r.job].task == t).unwrap_or(false))
            };
            let mut best: Option<usize> = None; // index into `ready`
            for (k, &jid) in ready.iter().enumerate() {
                if active(jobs[jid].task) {
                    continue;
                }
                best = match best {
                    None => Some(k),
                    Some(b) if rank_before(policy, &jobs[jid], &jobs[ready[b]]) => Some(k),
                    keep => keep,
                };
            }
            let Some(best) = best else { break };
            let jid = ready[best];
            let is_free = |s: usize, running: &[Option<Running>], slot_free_ns: &[u64]| {
                running[s].is_none() && slot_free_ns[s] <= now
            };
            let choice = if fstate.all_blacklisted() {
                // Every PRR is out: degrade to full reconfiguration on the
                // conventional lane (slot 0), never panic.
                if is_free(0, &running, &slot_free_ns) {
                    Some(0)
                } else {
                    None
                }
            } else if let Some(s) = cache
                .slot_of(jobs[jid].task)
                .filter(|&s| is_free(s, &running, &slot_free_ns) && !fstate.is_blacklisted(s))
            {
                Some(s)
            } else {
                (0..n_slots)
                    .find(|&s| {
                        is_free(s, &running, &slot_free_ns)
                            && !fstate.is_blacklisted(s)
                            && cache.occupant(s).is_none()
                    })
                    .or_else(|| {
                        (0..n_slots).find(|&s| {
                            is_free(s, &running, &slot_free_ns) && !fstate.is_blacklisted(s)
                        })
                    })
            };
            let Some(slot) = choice else { break };
            ready.remove(best);

            call += 1;
            let this_call = call;
            let task = jobs[jid].task;
            let resumed = matches!(jobs[jid].state, TaskState::Preempted { .. });
            let decision = Window {
                start_ns: now,
                end_ns: now + t_decision_ns,
            };
            let mut cursor = decision.end_ns;
            let hit = !fstate.all_blacklisted()
                && !policy.forces_miss()
                && cache.occupant(slot) == Some(task);

            let mut config = None;
            let mut config_clean_ns = 0u64;
            let mut forced_full = false;
            let mut dropped = false;
            let mut clean = true;
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
                let fate = fstate.on_miss(this_call, slot);
                forced_full = fate.forced_full;
                if forced_full {
                    stats.forced_full += 1;
                }
                let nominal_ns = ns(if fate.forced_full {
                    costs.t_full_s
                } else {
                    costs.t_partial_s
                });
                let chain_ns = ns(fate.chain_s(&plan.policy, costs.t_partial_s, costs.t_full_s));
                let start = cursor.max(port_free_ns);
                let win = Window {
                    start_ns: start,
                    end_ns: start + chain_ns,
                };
                port_free_ns = win.end_ns;
                cursor = win.end_ns;
                config_clean_ns = nominal_ns.min(chain_ns);
                clean &= chain_ns == config_clean_ns && !fate.escalated && !fate.dropped;
                config = Some(win);
                if fate.dropped {
                    dropped = true;
                } else {
                    if fate.escalated || fate.forced_full {
                        // The chain ended in a full reconfiguration:
                        // every idle resident is overwritten.
                        cache.clear();
                    }
                    if let Some(x) = cache.slot_of(task) {
                        if x != slot {
                            // Stale copy elsewhere (e.g. a blacklisted PRR
                            // holding a preempted job's bitstream): the new
                            // transfer supersedes it.
                            cache.clear_slot(x);
                        }
                    }
                    cache.load(slot, task);
                    policy.on_load(task, slot, this_call as usize);
                }
            }

            let mut restore = None;
            let mut restore_clean_ns = 0u64;
            if resumed && !dropped {
                let nominal_ns = ns(costs.restore_s(jobs[jid].state_bytes));
                let fate = fstate.on_restore(this_call, slot);
                let chain_ns = ns(fate.chain_s(
                    &plan.policy,
                    costs.restore_s(jobs[jid].state_bytes),
                    costs.t_full_s,
                ));
                let start = cursor.max(port_free_ns);
                let win = Window {
                    start_ns: start,
                    end_ns: start + chain_ns,
                };
                port_free_ns = win.end_ns;
                cursor = win.end_ns;
                restore_clean_ns = nominal_ns.min(chain_ns);
                clean &= chain_ns == restore_clean_ns && !fate.escalated && !fate.dropped;
                restore = Some(win);
                stats.restores += 1;
                stats.restore_ns += chain_ns;
                jobs[jid].restores += 1;
                if fate.dropped {
                    dropped = true;
                } else if fate.escalated {
                    // The write-back escalated to a full reconfiguration:
                    // the checkpoint is gone, the bitstream is fresh, the
                    // job restarts from zero progress.
                    jobs[jid].escalated_restores += 1;
                    stats.escalated_restores += 1;
                    jobs[jid].done_ns = 0;
                    cache.clear();
                    cache.load(slot, task);
                }
            }

            let (control, exec);
            if dropped {
                control = Window {
                    start_ns: cursor,
                    end_ns: cursor,
                };
                exec = Window {
                    start_ns: cursor,
                    end_ns: cursor,
                };
                let job = &mut jobs[jid];
                job.dropped = true;
                job.state = TaskState::Dropped;
                stats.dropped += 1;
                slot_free_ns[slot] = slot_free_ns[slot].max(cursor);
            } else {
                control = Window {
                    start_ns: cursor,
                    end_ns: cursor + t_control_ns,
                };
                cursor = control.end_ns;
                let remaining = jobs[jid].exec_ns - jobs[jid].done_ns;
                exec = Window {
                    start_ns: cursor,
                    end_ns: cursor + remaining,
                };
                jobs[jid].state = TaskState::Running { slot };
                running[slot] = Some(Running {
                    job: jid,
                    seg: segments.len(),
                    exec_start_ns: exec.start_ns,
                    exec_end_ns: exec.end_ns,
                    preempt_at_ns: None,
                });
            }
            policy.on_access(task, slot, this_call as usize);
            segments.push(ScheduleSegment {
                task,
                frame: jobs[jid].frame,
                slot,
                decision,
                config,
                config_clean_ns,
                restore,
                restore_clean_ns,
                control,
                exec,
                save: None,
                hit,
                forced_full,
                resumed,
                preempted: false,
                dropped,
                clean,
            });

            // Seeded SEU sweep after each dispatch, exactly as in the
            // run-to-completion faulty loop.
            for s in 0..n_slots {
                if fstate.seu_strikes(this_call, s) && cache.clear_slot(s).is_some() {
                    stats.seu_invalidations += 1;
                }
            }
        }

        // Lazily mark preemption points: each still-waiting job may mark
        // the most-preemptible running job it outranks, at that job's
        // next PR-safe quantum boundary.
        if policy.preemptive() && !ready.is_empty() {
            let mut waiting: Vec<usize> = ready.clone();
            waiting.sort_by(|&a, &b| {
                if rank_before(policy, &jobs[a], &jobs[b]) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            for &w in &waiting {
                let mut victim: Option<usize> = None;
                for s in 0..n_slots {
                    let Some(r) = running[s] else { continue };
                    if r.preempt_at_ns.is_some() {
                        continue;
                    }
                    if !policy.ranks_above(&jobs[w].view(), &jobs[r.job].view()) {
                        continue;
                    }
                    let k = now
                        .saturating_sub(r.exec_start_ns)
                        .div_ceil(quantum_ns)
                        .max(1);
                    let p = r.exec_start_ns + k * quantum_ns;
                    if p >= r.exec_end_ns {
                        continue; // it finishes before the next safe point
                    }
                    victim = match victim {
                        None => Some(s),
                        Some(v) => {
                            let vj = running[v].expect("occupied").job;
                            if rank_before(policy, &jobs[vj], &jobs[r.job]) {
                                Some(s) // r is even less urgent: prefer it
                            } else {
                                Some(v)
                            }
                        }
                    };
                }
                if let Some(s) = victim {
                    let r = running[s].as_mut().expect("occupied");
                    let k = now
                        .saturating_sub(r.exec_start_ns)
                        .div_ceil(quantum_ns)
                        .max(1);
                    r.preempt_at_ns = Some(r.exec_start_ns + k * quantum_ns);
                }
            }
        }

        // Next event: the earliest release, running end/checkpoint, or
        // slot-freeing save tail.
        let mut next = u64::MAX;
        if next_release < order.len() {
            next = next.min(jobs[order[next_release]].release_ns);
        }
        for s in 0..n_slots {
            if let Some(r) = &running[s] {
                let e = r
                    .preempt_at_ns
                    .map_or(r.exec_end_ns, |p| p.min(r.exec_end_ns));
                next = next.min(e);
            } else if slot_free_ns[s] > now {
                next = next.min(slot_free_ns[s]);
            }
        }
        if next == u64::MAX {
            debug_assert!(ready.is_empty(), "schedule stuck with ready jobs");
            break;
        }
        now = next;
    }

    stats.makespan_ns = segments.iter().map(|s| s.end_ns()).max().unwrap_or(0);
    let records = order
        .iter()
        .map(|&i| {
            let job = &jobs[i];
            JobRecord {
                task: job.task,
                frame: job.frame,
                release_ns: job.release_ns,
                deadline_ns: job.deadline_ns,
                finish_ns: job.finish_ns,
                missed: job.dropped || job.finish_ns.map(|f| f > job.deadline_ns).unwrap_or(true),
                dropped: job.dropped,
                preemptions: job.preemptions,
                restores: job.restores,
                escalated_restores: job.escalated_restores,
                state: job.state,
            }
        })
        .collect();
    PreemptOutcome {
        segments,
        jobs: records,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hprc_fault::{FaultSpec, RecoveryPolicy};

    fn costs() -> PreemptCosts {
        PreemptCosts {
            t_decision_s: 1e-6,
            t_control_s: 1e-6,
            t_partial_s: 1e-3,
            t_full_s: 10e-3,
            quantum_s: 2e-3,
            port_bytes_per_s: 100e6,
        }
    }

    fn task(id: usize, exec_s: f64, period_s: f64, priority: u32, frames: usize) -> RtTask {
        RtTask {
            task: TaskId(id),
            exec_s,
            period_s,
            deadline_s: period_s,
            priority,
            state_bytes: 100_000, // 1 ms save/restore at 100 MB/s
            frames,
            phase_s: 0.0,
        }
    }

    fn dctx() -> hprc_ctx::ExecCtx {
        hprc_ctx::ExecCtx::default()
    }

    #[test]
    fn single_task_runs_to_completion_without_preemption() {
        let tasks = [task(0, 0.01, 0.02, 0, 5)];
        let out = simulate_preemptive(
            &tasks,
            2,
            &mut StrictPriority::new(),
            &costs(),
            &FaultPlan::disarmed(),
            &dctx(),
        );
        assert_eq!(out.stats.jobs, 5);
        assert_eq!(out.stats.completed, 5);
        assert_eq!(out.stats.preemptions, 0);
        assert_eq!(out.stats.dropped, 0);
        // First dispatch misses (cold), the rest hit (resident, one slot).
        assert_eq!(out.stats.misses, 1);
        assert_eq!(out.stats.hits, 4);
        assert!(out.segments.iter().all(|s| s.clean));
        assert_eq!(out.stats.deadline_miss_ratio(), 0.0);
    }

    #[test]
    fn high_priority_arrival_preempts_long_low_priority_job() {
        // One long background job on one PRR; a short urgent frame lands
        // mid-run and must checkpoint it out.
        let long = RtTask {
            phase_s: 0.0,
            ..task(0, 0.100, 1.0, 9, 1)
        };
        let urgent = RtTask {
            phase_s: 0.010,
            ..task(1, 0.005, 1.0, 0, 1)
        };
        let out = simulate_preemptive(
            &[long, urgent],
            1,
            &mut StrictPriority::new(),
            &costs(),
            &FaultPlan::disarmed(),
            &dctx(),
        );
        assert_eq!(out.stats.completed, 2);
        assert!(out.stats.preemptions >= 1, "{:?}", out.stats);
        assert_eq!(out.stats.restores, out.stats.preemptions);
        // The urgent job finishes before the background job.
        let finish = |t: usize| {
            out.jobs
                .iter()
                .find(|j| j.task == TaskId(t))
                .unwrap()
                .finish_ns
                .unwrap()
        };
        assert!(finish(1) < finish(0));
        // The background job's record carries the checkpoint count and
        // its segments carry the save/restore windows.
        let bg = out.jobs.iter().find(|j| j.task == TaskId(0)).unwrap();
        assert!(bg.preemptions >= 1);
        assert!(out.segments.iter().any(|s| s.preempted && s.save.is_some()));
        assert!(out
            .segments
            .iter()
            .any(|s| s.resumed && s.restore.is_some()));
    }

    #[test]
    fn checkpoints_land_on_quantum_boundaries() {
        let long = task(0, 0.101, 1.0, 9, 1);
        let urgent = RtTask {
            phase_s: 0.0101,
            ..task(1, 0.005, 1.0, 0, 1)
        };
        let out = simulate_preemptive(
            &[long, urgent],
            1,
            &mut StrictPriority::new(),
            &costs(),
            &FaultPlan::disarmed(),
            &dctx(),
        );
        let q = ns(costs().quantum_s);
        for seg in out.segments.iter().filter(|s| s.preempted) {
            let ran = seg.exec.end_ns - seg.exec.start_ns;
            assert_eq!(ran % q, 0, "checkpoint not quantum-aligned: {seg:?}");
            assert!(ran >= q);
        }
    }

    #[test]
    fn non_preemptive_baseline_never_checkpoints() {
        let long = task(0, 0.100, 1.0, 9, 1);
        let urgent = RtTask {
            phase_s: 0.010,
            ..task(1, 0.005, 1.0, 0, 1)
        };
        for p in [
            &mut StrictPriority::non_preemptive() as &mut dyn Policy,
            &mut Edf::non_preemptive(),
        ] {
            let out = simulate_preemptive(
                &[long, urgent],
                1,
                p,
                &costs(),
                &FaultPlan::disarmed(),
                &dctx(),
            );
            assert_eq!(out.stats.preemptions, 0);
            assert_eq!(out.stats.restores, 0);
            assert_eq!(out.stats.completed, 2);
        }
    }

    #[test]
    fn edf_ranks_by_deadline_not_priority() {
        let a = JobView {
            task: TaskId(0),
            priority: 9,
            deadline_ns: 100,
            release_ns: 0,
        };
        let b = JobView {
            task: TaskId(1),
            priority: 0,
            deadline_ns: 200,
            release_ns: 0,
        };
        let edf = Edf::new();
        assert!(edf.ranks_above(&a, &b));
        assert!(!edf.ranks_above(&b, &a));
        assert!(!edf.ranks_above(&a, &a), "strict on ties");
        let pri = StrictPriority::new();
        assert!(pri.ranks_above(&b, &a));
        assert!(!pri.ranks_above(&a, &a));
    }

    #[test]
    fn outcome_is_deterministic() {
        let tasks = [task(0, 0.02, 0.03, 2, 8), task(1, 0.004, 0.01, 0, 20)];
        let plan = FaultPlan::new(FaultSpec::uniform(0.2), RecoveryPolicy::default(), 7);
        let run = || simulate_preemptive(&tasks, 2, &mut Edf::new(), &costs(), &plan, &dctx());
        assert_eq!(run(), run());
    }

    #[test]
    fn segments_are_monotone_and_windows_are_ordered() {
        let tasks = [task(0, 0.02, 0.03, 2, 6), task(1, 0.004, 0.01, 0, 15)];
        let out = simulate_preemptive(
            &tasks,
            2,
            &mut StrictPriority::new(),
            &costs(),
            &FaultPlan::disarmed(),
            &dctx(),
        );
        let mut prev = 0;
        for seg in &out.segments {
            assert!(seg.start_ns() >= prev, "dispatch order broken");
            prev = seg.start_ns();
            assert!(seg.decision.end_ns >= seg.decision.start_ns);
            if let Some(c) = seg.config {
                assert!(c.start_ns >= seg.decision.end_ns);
                assert!(seg.config_clean_ns <= c.len_ns());
            }
            if let Some(r) = seg.restore {
                assert!(r.start_ns >= seg.decision.end_ns);
            }
            assert!(seg.exec.start_ns >= seg.control.end_ns);
            if let Some(sv) = seg.save {
                assert!(sv.start_ns >= seg.exec.end_ns);
            }
        }
    }

    #[test]
    fn completed_jobs_account_their_full_execution() {
        let tasks = [task(0, 0.02, 0.03, 2, 6), task(1, 0.004, 0.01, 0, 15)];
        let out = simulate_preemptive(
            &tasks,
            1,
            &mut Edf::new(),
            &costs(),
            &FaultPlan::disarmed(),
            &dctx(),
        );
        // Per-job exec time summed across that job's segments equals the
        // task's requirement, preempted or not.
        for rec in out.jobs.iter().filter(|j| !j.dropped) {
            let total: u64 = out
                .segments
                .iter()
                .filter(|s| s.task == rec.task && s.frame == rec.frame)
                .map(|s| s.exec.len_ns())
                .sum();
            let spec = ns(if rec.task == TaskId(0) { 0.02 } else { 0.004 }).max(1);
            assert_eq!(total, spec, "job {:?}#{}", rec.task, rec.frame);
        }
    }

    #[test]
    fn certain_faults_drop_or_escalate_but_never_panic() {
        let tasks = [task(0, 0.02, 0.03, 2, 6), task(1, 0.004, 0.01, 0, 15)];
        let spec = FaultSpec::uniform(1.0);
        let plan = FaultPlan::new(spec, RecoveryPolicy::default(), 3);
        let out = simulate_preemptive(
            &tasks,
            2,
            &mut StrictPriority::new(),
            &costs(),
            &plan,
            &dctx(),
        );
        assert_eq!(
            out.stats.completed + out.stats.dropped,
            out.stats.jobs,
            "{:?}",
            out.stats
        );
        assert!(out.stats.dropped > 0);
        assert!(out.segments.iter().any(|s| !s.clean));
        assert!(out.stats.deadline_miss_ratio() > 0.0);
    }

    #[test]
    fn seu_upsets_invalidate_residents() {
        let tasks = [task(0, 0.005, 0.01, 0, 40)];
        let spec = FaultSpec {
            p_seu: 0.5,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::new(spec, RecoveryPolicy::default(), 11);
        let out = simulate_preemptive(
            &tasks,
            2,
            &mut StrictPriority::new(),
            &costs(),
            &plan,
            &dctx(),
        );
        assert!(out.stats.seu_invalidations > 0);
        // Every SEU eviction turns a would-be hit into a miss.
        assert!(out.stats.misses > 1);
        assert_eq!(out.stats.completed, 40);
    }

    #[test]
    fn metrics_are_recorded_per_policy() {
        let tasks = [task(0, 0.02, 0.05, 2, 3), task(1, 0.004, 0.01, 0, 10)];
        let ctx = dctx().with_registry(hprc_obs::Registry::new());
        let out = simulate_preemptive(
            &tasks,
            1,
            &mut Edf::new(),
            &costs(),
            &FaultPlan::disarmed(),
            &ctx,
        );
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sched.edf.preempt.jobs"], out.stats.jobs);
        assert_eq!(
            snap.counters["sched.edf.preempt.preemptions"],
            out.stats.preemptions
        );
        assert_eq!(
            snap.gauges["sched.edf.preempt.deadline_miss_ratio"],
            out.stats.deadline_miss_ratio()
        );
    }

    #[test]
    fn preempted_state_reports_progress_and_saved_context() {
        let long = task(0, 0.100, 10.0, 9, 1);
        let urgent = RtTask {
            phase_s: 0.010,
            // Long enough that the background job stays checkpointed for
            // a while; we inspect its state via the segment windows.
            ..task(1, 0.005, 10.0, 0, 1)
        };
        let out = simulate_preemptive(
            &[long, urgent],
            1,
            &mut StrictPriority::new(),
            &costs(),
            &FaultPlan::disarmed(),
            &dctx(),
        );
        let seg = out
            .segments
            .iter()
            .find(|s| s.preempted)
            .expect("a checkpoint happened");
        let save = seg.save.expect("save window present");
        // 100 kB at 100 MB/s = 1 ms readback.
        assert_eq!(save.len_ns(), 1_000_000);
        // Progress at the checkpoint is a whole number of quanta.
        assert!(seg.exec.len_ns() > 0 && seg.exec.len_ns() < ns(0.100));
    }
}
