//! Wall-clock timing capture for the bench harness: a monotonic
//! stopwatch plus nearest-rank summary statistics over repeated runs.
//!
//! This is *host* wall-clock time (how long the harness takes to run),
//! entirely separate from the simulator's virtual `SimTime`.

use std::time::Instant;

/// A monotonic wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }
}

/// Nearest-rank percentile of `samples` (the same convention
/// `hprc-obs` histograms use). Returns 0.0 for an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summary of repeated wall-clock measurements, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples.
    pub count: usize,
    /// Nearest-rank median.
    pub p50_ms: f64,
    /// Fastest sample.
    pub min_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
}

impl SampleStats {
    /// Summarizes `samples`; all-zero for an empty slice.
    pub fn from_samples(samples: &[f64]) -> SampleStats {
        if samples.is_empty() {
            return SampleStats {
                count: 0,
                p50_ms: 0.0,
                min_ms: 0.0,
                max_ms: 0.0,
            };
        }
        SampleStats {
            count: samples.len(),
            p50_ms: percentile(samples, 50.0),
            min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max_ms: samples.iter().copied().fold(0.0, f64::max),
        }
    }

    /// Times `f` over `repeat` runs (at least one) and summarizes.
    pub fn measure(repeat: usize, mut f: impl FnMut()) -> SampleStats {
        let samples: Vec<f64> = (0..repeat.max(1))
            .map(|_| {
                let sw = Stopwatch::start();
                f();
                sw.elapsed_ms()
            })
            .collect();
        SampleStats::from_samples(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(a >= 0.0 && b >= a);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&s, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn stats_summarize() {
        let st = SampleStats::from_samples(&[2.0, 1.0, 3.0]);
        assert_eq!(st.count, 3);
        assert_eq!(st.p50_ms, 2.0);
        assert_eq!(st.min_ms, 1.0);
        assert_eq!(st.max_ms, 3.0);
    }

    #[test]
    fn measure_runs_at_least_once() {
        let mut n = 0;
        let st = SampleStats::measure(0, || n += 1);
        assert_eq!(n, 1);
        assert_eq!(st.count, 1);
        let st = SampleStats::measure(3, || n += 1);
        assert_eq!(n, 4);
        assert_eq!(st.count, 3);
        assert!(st.min_ms <= st.p50_ms && st.p50_ms <= st.max_ms);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = SampleStats::from_samples(&[]);
        assert_eq!(st.count, 0);
        assert_eq!(st.p50_ms, 0.0);
        assert_eq!(st.max_ms, 0.0);
    }
}
