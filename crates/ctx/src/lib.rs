//! # hprc-ctx
//!
//! The execution-context layer: one [`ExecCtx`] struct carrying every
//! cross-cutting concern of a run — the observability [`Registry`], the
//! deterministic base RNG seed, the platform [`Calibration`], and the
//! parallelism budget — threaded through all substrates (`hprc-sim`,
//! `hprc-sched`, `hprc-virt`, `hprc-exp`) so each entry point exists
//! exactly once instead of as a `foo()` / `foo_with(&Registry)` twin.
//!
//! [`ExecCtx::default()`] reproduces the plain, uninstrumented, serial
//! behavior bit-for-bit: a no-op registry, seed base 0 (the XOR
//! identity, so explicit per-call seeds pass through unchanged), the
//! measured XD1 calibration, and a parallelism budget of one.
//!
//! ```
//! use hprc_ctx::ExecCtx;
//! use hprc_obs::Registry;
//!
//! // Plain run: everything defaulted.
//! let ctx = ExecCtx::default();
//! assert!(!ctx.registry.is_enabled());
//! assert_eq!(ctx.seed_for(7), 7); // base 0 is the identity
//!
//! // Instrumented, reseeded, parallel run.
//! let ctx = ExecCtx::default()
//!     .with_registry(Registry::new())
//!     .with_seed(42)
//!     .with_jobs(4);
//! let child = ctx.child(3);
//! assert_eq!(child.seed, 42 ^ 3); // per-index derivation
//! assert_eq!(child.jobs, 1); // children never nest parallelism
//! assert!(child.registry.is_enabled()); // per-point registry
//! ```

#![warn(missing_docs)]

pub mod symbol;
pub mod timing;

pub use symbol::Symbol;

use hprc_obs::{DeltaCache, Journal, Registry, RunBudget};

/// Which calibration of the modeled platform a run uses.
///
/// Table 2 of the paper gives two timing columns for the Cray XD1:
/// *measured* (vendor-API software overhead, ICAP FSM costs) and
/// *estimated* (raw 66 MB/s SelectMap-rate transfers). Substrates map
/// this selection onto concrete node parameters (e.g.
/// `NodeConfig::for_calibration` in `hprc-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Calibration {
    /// Measured configuration times (Table 2's "measured" column).
    #[default]
    Measured,
    /// Estimated configuration times (raw port-rate transfers).
    Estimated,
}

/// The execution context for one run: observability, determinism,
/// platform selection, and parallelism, in one cheap-to-clone handle.
///
/// Every substrate entry point takes `&ExecCtx` as its last parameter.
/// Cloning clones the registry *handle* (an `Arc`, or nothing for a
/// no-op registry) — clones observe the same instruments.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// Metrics/span registry. [`Registry::noop`] (the default) makes
    /// every instrumentation site a single branch.
    pub registry: Registry,
    /// Causal run journal. [`Journal::noop`] (the default) makes every
    /// journaling site a single branch; a live journal records the
    /// deterministic, replayable event log.
    pub journal: Journal,
    /// Deterministic base RNG seed. Call-site seeds combine with it via
    /// [`ExecCtx::seed_for`] (XOR), so the default base 0 leaves
    /// explicit seeds untouched.
    pub seed: u64,
    /// Platform/calibration selection for runs that build their own
    /// node configuration.
    pub calibration: Calibration,
    /// Parallelism budget for sweep runners (worker threads). Clamped
    /// to at least 1 by consumers; 1 means strictly serial.
    pub jobs: usize,
    /// Deterministic run budget. [`RunBudget::unlimited`] (the default)
    /// makes every budget hook a single branch; a limited budget cuts
    /// off simulation at an exact logical sequence number and tallies
    /// the refused work as would-have-run.
    pub budget: RunBudget,
    /// Delta-simulation skeleton cache. [`DeltaCache::disabled`] (the
    /// default) makes every memoization hook a single branch; an
    /// enabled cache lets sweeps replay memoized schedule prefixes and
    /// whole executor runs instead of re-simulating from scratch, with
    /// byte-identical results.
    pub delta: DeltaCache,
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx {
            registry: Registry::noop(),
            journal: Journal::noop(),
            seed: 0,
            calibration: Calibration::default(),
            jobs: 1,
            budget: RunBudget::unlimited(),
            delta: DeltaCache::disabled(),
        }
    }
}

impl ExecCtx {
    /// The default context: no-op registry, seed base 0, measured
    /// calibration, serial execution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the registry.
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// Replaces the journal.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the calibration selection.
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Replaces the parallelism budget (0 is treated as 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Replaces the run budget.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the delta-simulation skeleton cache.
    #[must_use]
    pub fn with_delta(mut self, delta: DeltaCache) -> Self {
        self.delta = delta;
        self
    }

    /// The effective seed for a named RNG stream: `base ⊕ stream`.
    ///
    /// With the default base 0 this is the identity, so call sites that
    /// historically hard-coded seeds reproduce their exact pre-context
    /// values; a non-zero base shifts every stream deterministically.
    pub fn seed_for(&self, stream: u64) -> u64 {
        self.seed ^ stream
    }

    /// The parallelism budget, never less than 1.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.max(1)
    }

    /// Derives the per-index child context for one sweep point:
    /// `seed = base ⊕ index`, a fresh per-point registry (active iff
    /// this context's is), and a serial (`jobs = 1`) budget so nested
    /// sweeps never multiply threads.
    #[must_use]
    pub fn child(&self, index: usize) -> ExecCtx {
        ExecCtx {
            seed: self.seed ^ index as u64,
            journal: self.journal.child(index as u64),
            ..self.fork()
        }
    }

    /// Derives a child context that keeps the parent's seed base:
    /// a fresh registry (active iff this context's is) and a serial
    /// budget. For fanning out heterogeneous work items (e.g. whole
    /// experiments) whose internal seed streams are already
    /// independent.
    #[must_use]
    pub fn fork(&self) -> ExecCtx {
        ExecCtx {
            registry: if self.registry.is_enabled() {
                Registry::new()
            } else {
                Registry::noop()
            },
            journal: self.journal.fork(),
            seed: self.seed,
            calibration: self.calibration,
            jobs: 1,
            // Children and forks get a fresh unlimited budget: a shared
            // budget charged from parallel workers would make exhaustion
            // depend on the interleaving. Fleet-style fan-outs split the
            // parent budget explicitly (RunBudget::split_events) instead.
            budget: RunBudget::unlimited(),
            // The skeleton cache IS shared: replays are byte-identical
            // to longhand runs, so parallel workers reusing each
            // other's skeletons can never perturb results.
            delta: self.delta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_identity_context() {
        let ctx = ExecCtx::default();
        assert!(!ctx.registry.is_enabled());
        assert_eq!(ctx.seed, 0);
        assert_eq!(ctx.calibration, Calibration::Measured);
        assert_eq!(ctx.effective_jobs(), 1);
        assert_eq!(ctx.seed_for(1234), 1234);
    }

    #[test]
    fn builders_compose() {
        let ctx = ExecCtx::new()
            .with_seed(9)
            .with_jobs(0)
            .with_calibration(Calibration::Estimated);
        assert_eq!(ctx.seed, 9);
        assert_eq!(ctx.jobs, 1, "jobs 0 clamps to 1");
        assert_eq!(ctx.calibration, Calibration::Estimated);
    }

    #[test]
    fn child_derivation_is_xor_of_index() {
        let ctx = ExecCtx::new().with_seed(0b1010).with_jobs(8);
        let c = ctx.child(0b0110);
        assert_eq!(c.seed, 0b1100);
        assert_eq!(c.jobs, 1);
        assert_eq!(c.calibration, ctx.calibration);
        // Noop parent => noop children (no accidental instrumentation).
        assert!(!c.registry.is_enabled());
    }

    #[test]
    fn children_of_active_parents_get_fresh_active_registries() {
        let ctx = ExecCtx::new().with_registry(hprc_obs::Registry::new());
        ctx.registry.counter("parent").inc();
        let c0 = ctx.child(0);
        let c1 = ctx.child(1);
        assert!(c0.registry.is_enabled() && c1.registry.is_enabled());
        c0.registry.counter("point").inc();
        // Fresh per-point registries: nothing bleeds between them.
        assert!(c1.registry.snapshot().counters.is_empty());
        assert!(!c0.registry.snapshot().counters.contains_key("parent"));
    }

    #[test]
    fn fork_keeps_the_seed_base() {
        let ctx = ExecCtx::new().with_seed(77).with_jobs(4);
        let f = ctx.fork();
        assert_eq!(f.seed, 77);
        assert_eq!(f.jobs, 1);
    }

    #[test]
    fn budgets_never_leak_into_children_or_forks() {
        let ctx = ExecCtx::new().with_budget(RunBudget::events(3));
        assert!(ctx.budget.is_limited());
        // A shared budget across parallel children would tie exhaustion
        // to worker interleaving, so derivation resets it.
        assert!(!ctx.child(0).budget.is_limited());
        assert!(!ctx.fork().budget.is_limited());
        // Clones share the budget state (like the registry handle).
        let clone = ctx.clone();
        assert_eq!(clone.budget.admit(5), 3);
        assert!(ctx.budget.exhausted());
    }

    #[test]
    fn delta_cache_is_shared_with_children_and_forks() {
        let ctx = ExecCtx::new().with_delta(DeltaCache::new(1024));
        assert!(ctx.delta.is_enabled());
        let child = ctx.child(3);
        child.delta.put(b"k".to_vec(), std::sync::Arc::new(5u8), 1);
        // One shared store: the parent and a sibling both see it.
        assert!(ctx.delta.get(b"k").is_some());
        assert!(ctx.fork().delta.get(b"k").is_some());
        // The default context keeps the cache disabled.
        assert!(!ExecCtx::default().delta.is_enabled());
    }

    #[test]
    fn clones_share_the_registry() {
        let ctx = ExecCtx::new().with_registry(hprc_obs::Registry::new());
        let clone = ctx.clone();
        clone.registry.counter("shared").inc();
        assert_eq!(ctx.registry.snapshot().counters["shared"], 1);
    }
}
