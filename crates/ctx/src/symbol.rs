//! Process-wide string interning for hot-path identifiers.
//!
//! The simulator's steady-state fast path re-emits the same task and
//! label strings hundreds of times per sweep point; cloning a `String`
//! per call dominated the profile. A [`Symbol`] is a `Copy` handle into
//! a process-global table: interning the same text twice yields the
//! same id, comparison/hashing are integer operations, and resolution
//! is a slice index into leaked (process-lifetime) storage.
//!
//! The table is append-only and never serialized: ids are stable only
//! within one process, so every external representation (JSON
//! artifacts, rendered reports) goes through [`Symbol::as_str`]. The
//! `Serialize` impl does exactly that, which keeps artifact bytes
//! independent of interning order.
//!
//! ```
//! use hprc_ctx::Symbol;
//!
//! let a = Symbol::intern("task0");
//! let b = Symbol::intern("task0");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "task0");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a cheap, `Copy`, process-global identifier.
///
/// Equality and hashing compare the id, which is equivalent to string
/// equality because interning is canonical.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    by_text: HashMap<&'static str, u32>,
    texts: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            by_text: HashMap::new(),
            texts: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `text`, returning its canonical id. O(1) amortized; the
    /// first interning of a distinct string leaks one copy of it for
    /// the process lifetime (identifier vocabularies are small and
    /// bounded by workload structure).
    pub fn intern(text: &str) -> Symbol {
        let table = interner();
        if let Some(&id) = table.read().expect("interner poisoned").by_text.get(text) {
            return Symbol(id);
        }
        let mut w = table.write().expect("interner poisoned");
        // Re-check: another thread may have inserted between the locks.
        if let Some(&id) = w.by_text.get(text) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let id = u32::try_from(w.texts.len()).expect("interner overflow");
        w.texts.push(leaked);
        w.by_text.insert(leaked, id);
        Symbol(id)
    }

    /// Resolves the symbol back to its text.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").texts[self.0 as usize]
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(text: &str) -> Symbol {
        Symbol::intern(text)
    }
}

impl From<String> for Symbol {
    fn from(text: String) -> Symbol {
        Symbol::intern(&text)
    }
}

impl serde::Serialize for Symbol {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let a = Symbol::intern("alpha-sym-test");
        let b = Symbol::intern("alpha-sym-test");
        let c = Symbol::intern("beta-sym-test");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha-sym-test");
        assert_eq!(c.as_str(), "beta-sym-test");
    }

    #[test]
    fn conversions_and_formatting() {
        let s: Symbol = "gamma-sym-test".into();
        let t: Symbol = String::from("gamma-sym-test").into();
        assert_eq!(s, t);
        assert_eq!(format!("{s}"), "gamma-sym-test");
        assert_eq!(format!("{s:?}"), "Symbol(\"gamma-sym-test\")");
    }

    #[test]
    fn serializes_as_the_text() {
        use serde::Serialize;
        let s = Symbol::intern("delta-sym-test");
        assert_eq!(
            s.to_json_value(),
            serde::Value::String("delta-sym-test".into())
        );
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<Symbol> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| Symbol::intern("contended-sym-test")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
