//! Per-run derived observables and the `<id>.attr.json` report schema.

use hprc_model::params::ModelParams;
use hprc_model::speedup::asymptotic_speedup;
use hprc_obs::Registry;
use hprc_sim::executor::ExecutionReport;
use serde::{Deserialize, Serialize};

use crate::buckets::Buckets;

/// Wall-clock attribution of one executed run (FRTR or PRTR): the six
/// exclusive buckets in seconds and as fractions of the span, plus the
/// run-level observables derived from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunAttribution {
    /// `"frtr"` or `"prtr"` (free-form label; callers name the run).
    pub mode: String,
    /// End of the run, seconds (the buckets sum to exactly this).
    pub span_s: f64,
    /// Task execution (excluding overlapped configuration), seconds.
    pub exec_s: f64,
    /// Configuration hidden behind execution, seconds.
    pub hidden_config_s: f64,
    /// Configuration exposed on the critical path, seconds.
    pub visible_config_s: f64,
    /// Exposed decision time, seconds.
    pub decision_s: f64,
    /// Exposed transfer-of-control time, seconds.
    pub control_s: f64,
    /// Idle/stall time, seconds.
    pub idle_s: f64,
    /// Total configuration-port busy time (hidden + visible), seconds.
    pub total_config_s: f64,
    /// `hidden_config / total_config`; `None` when the run performed no
    /// configuration (serializes as `null`).
    pub hiding_efficiency: Option<f64>,
    /// Number of task calls executed.
    pub n_calls: u64,
    /// Number of (re-)configurations performed.
    pub n_config: u64,
    /// `1 - n_config / n_calls`: the hit ratio the run actually
    /// realized (0 under FRTR, the cache's measured `H` under PRTR).
    pub effective_hit_ratio: f64,
}

/// Nanoseconds → seconds, the exact inverse of `SimTime::as_secs_f64`.
fn s(ns: u64) -> f64 {
    ns as f64 * 1e-9
}

impl RunAttribution {
    /// Attributes one execution report. The bucket identity is
    /// machine-checked ([`Buckets::checked_from_timeline`]).
    pub fn from_report(mode: impl Into<String>, report: &ExecutionReport) -> RunAttribution {
        let b = Buckets::checked_from_timeline(&report.timeline);
        let n_calls = report.calls.len() as u64;
        RunAttribution {
            mode: mode.into(),
            span_s: s(report.timeline.span_end().0),
            exec_s: s(b.exec_ns),
            hidden_config_s: s(b.hidden_config_ns),
            visible_config_s: s(b.visible_config_ns),
            decision_s: s(b.decision_ns),
            control_s: s(b.control_ns),
            idle_s: s(b.idle_ns),
            total_config_s: s(b.total_config_ns()),
            hiding_efficiency: b.hiding_efficiency(),
            n_calls,
            n_config: report.n_config,
            effective_hit_ratio: if n_calls == 0 {
                0.0
            } else {
                1.0 - report.n_config as f64 / n_calls as f64
            },
        }
    }

    /// Records the buckets and derived observables as gauges under
    /// `{prefix}.attr.*` (no-op on a disabled registry).
    pub fn record(&self, registry: &Registry, prefix: &str) {
        if !registry.is_enabled() {
            return;
        }
        let g = |name: &str, v: f64| registry.gauge(&format!("{prefix}.attr.{name}")).set(v);
        g("span_s", self.span_s);
        g("exec_s", self.exec_s);
        g("hidden_config_s", self.hidden_config_s);
        g("visible_config_s", self.visible_config_s);
        g("decision_s", self.decision_s);
        g("control_s", self.control_s);
        g("idle_s", self.idle_s);
        if let Some(h) = self.hiding_efficiency {
            g("hiding_efficiency", h);
        }
        g("effective_hit_ratio", self.effective_hit_ratio);
    }

    /// The six buckets as `(label, seconds, fraction-of-span)` rows, in
    /// rendering order.
    pub fn rows(&self) -> [(&'static str, f64, f64); 6] {
        let frac = |v: f64| {
            if self.span_s > 0.0 {
                v / self.span_s
            } else {
                0.0
            }
        };
        [
            ("exec", self.exec_s, frac(self.exec_s)),
            (
                "config hidden",
                self.hidden_config_s,
                frac(self.hidden_config_s),
            ),
            (
                "config visible",
                self.visible_config_s,
                frac(self.visible_config_s),
            ),
            ("decision", self.decision_s, frac(self.decision_s)),
            ("control", self.control_s, frac(self.control_s)),
            ("idle", self.idle_s, frac(self.idle_s)),
        ]
    }
}

/// Measured speedup against the closed-form asymptote of equation (7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundGap {
    /// Speedup measured on the simulator (FRTR span / PRTR span).
    pub speedup_sim: f64,
    /// Equation (7)'s `S∞` at the equivalent model parameters.
    pub s_asymptotic: f64,
    /// `S∞ − speedup_sim` (non-negative up to second-order simulator
    /// effects: shared channels, ICAP serialization, the O(1/n) cold
    /// start).
    pub bound_gap: f64,
    /// `bound_gap / S∞` — the fraction of the analytical headroom the
    /// run left on the table.
    pub bound_gap_frac: f64,
    /// Whether the paper's `S∞ ≤ 2` long-task bound applies
    /// (`X_task ≥ 1`).
    pub long_task_bound_active: bool,
}

impl BoundGap {
    /// Evaluates the gap between a measured speedup and equation (7) at
    /// `params`.
    pub fn new(params: &ModelParams, speedup_sim: f64) -> BoundGap {
        let s_inf = asymptotic_speedup(params);
        BoundGap {
            speedup_sim,
            s_asymptotic: s_inf,
            bound_gap: s_inf - speedup_sim,
            bound_gap_frac: if s_inf > 0.0 && s_inf.is_finite() {
                (s_inf - speedup_sim) / s_inf
            } else {
                0.0
            },
            long_task_bound_active: params.times.x_task >= 1.0,
        }
    }
}

/// The `<id>.attr.json` artifact: a paired FRTR/PRTR attribution at one
/// operating point plus the measured-vs-analytical bound gap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Artifact schema version (bump on breaking change).
    pub schema_version: u32,
    /// Experiment id the attribution belongs to.
    pub id: String,
    /// Normalized task time of the operating point.
    pub x_task: f64,
    /// Normalized partial-configuration time of the platform.
    pub x_prtr: f64,
    /// Hit ratio the model was evaluated at (the measured `H`).
    pub hit_ratio: f64,
    /// FRTR run attribution.
    pub frtr: RunAttribution,
    /// PRTR run attribution.
    pub prtr: RunAttribution,
    /// Bound-gap analysis at this operating point.
    pub gap: BoundGap,
}

impl AttributionReport {
    /// Current schema version of the `.attr.json` artifact.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Builds the paired attribution for one operating point. `params`
    /// must describe the same point the two reports executed
    /// (`model_params_for` in `hprc-exp` builds it from the node).
    pub fn new(
        id: impl Into<String>,
        params: &ModelParams,
        frtr: &ExecutionReport,
        prtr: &ExecutionReport,
    ) -> AttributionReport {
        let speedup_sim = frtr.total_s() / prtr.total_s();
        AttributionReport {
            schema_version: Self::SCHEMA_VERSION,
            id: id.into(),
            x_task: params.times.x_task,
            x_prtr: params.times.x_prtr,
            hit_ratio: params.hit_ratio,
            frtr: RunAttribution::from_report("frtr", frtr),
            prtr: RunAttribution::from_report("prtr", prtr),
            gap: BoundGap::new(params, speedup_sim),
        }
    }

    /// A compact fixed-width text table of the two runs' buckets plus
    /// the derived observables — folded into experiment report bodies.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>12} {:>7} {:>12} {:>7}\n",
            "bucket", "FRTR (ms)", "%", "PRTR (ms)", "%"
        ));
        for ((label, f_s, f_frac), (_, p_s, p_frac)) in
            self.frtr.rows().iter().zip(self.prtr.rows().iter())
        {
            out.push_str(&format!(
                "{:<16} {:>12.3} {:>6.1}% {:>12.3} {:>6.1}%\n",
                label,
                f_s * 1e3,
                f_frac * 100.0,
                p_s * 1e3,
                p_frac * 100.0
            ));
        }
        out.push_str(&format!(
            "{:<16} {:>12.3} {:>6.1}% {:>12.3} {:>6.1}%\n",
            "span",
            self.frtr.span_s * 1e3,
            100.0,
            self.prtr.span_s * 1e3,
            100.0
        ));
        let eff = |h: Option<f64>| match h {
            Some(h) => format!("{:.1}%", h * 100.0),
            None => "n/a".into(),
        };
        out.push_str(&format!(
            "hiding efficiency: FRTR {}, PRTR {}; effective H = {:.3};\n\
             speedup {:.2}x vs S-inf {:.2}x (gap {:.2}, {:.1}% of headroom).\n",
            eff(self.frtr.hiding_efficiency),
            eff(self.prtr.hiding_efficiency),
            self.prtr.effective_hit_ratio,
            self.gap.speedup_sim,
            self.gap.s_asymptotic,
            self.gap.bound_gap,
            self.gap.bound_gap_frac * 100.0,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hprc_ctx::ExecCtx;
    use hprc_fpga::floorplan::Floorplan;
    use hprc_model::params::NormalizedTimes;
    use hprc_sim::executor::{run_frtr, run_prtr};
    use hprc_sim::node::NodeConfig;
    use hprc_sim::task::{PrtrCall, TaskCall};

    fn runs(
        t_task: f64,
        n: usize,
        all_miss: bool,
    ) -> (NodeConfig, ExecutionReport, ExecutionReport) {
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        let calls: Vec<PrtrCall> = (0..n)
            .map(|i| PrtrCall {
                task: TaskCall::with_task_time(format!("t{}", i % 3), &node, t_task),
                hit: !all_miss && i > 0,
                slot: i % node.n_prrs,
            })
            .collect();
        let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
        let ctx = ExecCtx::default();
        let f = run_frtr(&node, &frtr_calls, &ctx).unwrap();
        let p = run_prtr(&node, &calls, &ctx).unwrap();
        (node, f, p)
    }

    fn params_for(node: &NodeConfig, t_task: f64, h: f64) -> ModelParams {
        ModelParams::new(
            NormalizedTimes {
                x_task: t_task / node.t_frtr_s(),
                x_control: node.control_overhead_s / node.t_frtr_s(),
                x_decision: node.decision_latency_s / node.t_frtr_s(),
                x_prtr: node.t_prtr_s() / node.t_frtr_s(),
            },
            h,
            300,
        )
        .unwrap()
    }

    #[test]
    fn frtr_hides_nothing_prtr_hides_almost_everything_on_long_tasks() {
        // T_task = 10 × T_PRTR: PRTR hides essentially all configuration.
        let (node, f, p) = runs(0.2, 30, true);
        let fa = RunAttribution::from_report("frtr", &f);
        let pa = RunAttribution::from_report("prtr", &p);
        assert_eq!(fa.hiding_efficiency, Some(0.0), "FRTR cannot overlap");
        let ph = pa.hiding_efficiency.unwrap();
        assert!(ph > 0.9, "long tasks hide configuration: {ph}");
        assert_eq!(fa.effective_hit_ratio, 0.0);
        assert_eq!(pa.n_config, 30);
        let _ = node;
    }

    #[test]
    fn all_hit_prtr_has_no_config_to_hide() {
        let (_, _, p) = runs(0.05, 10, false);
        let pa = RunAttribution::from_report("prtr", &p);
        assert_eq!(pa.n_config, 1); // only the cold start
        assert!((pa.effective_hit_ratio - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bound_gap_is_small_at_the_peak() {
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        let t_task = node.t_prtr_s();
        let (_, f, p) = runs(t_task, 300, true);
        let t_actual = f.calls[0].exec_end - f.calls[0].exec_start;
        let params = params_for(&node, t_actual.as_secs_f64(), 0.0);
        let report = AttributionReport::new("test", &params, &f, &p);
        assert!(report.gap.speedup_sim > 75.0);
        assert!(report.gap.s_asymptotic >= report.gap.speedup_sim);
        // The finite run sits within a few percent of eq. (7).
        assert!(
            report.gap.bound_gap_frac < 0.05,
            "gap frac {}",
            report.gap.bound_gap_frac
        );
        assert!(!report.gap.long_task_bound_active);
    }

    #[test]
    fn report_serializes_with_stable_keys() {
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        let (_, f, p) = runs(0.05, 5, true);
        let params = params_for(&node, 0.05, 0.0);
        let report = AttributionReport::new("demo", &params, &f, &p);
        let json = serde_json::to_value(&report).unwrap();
        for key in [
            "schema_version",
            "id",
            "x_task",
            "x_prtr",
            "hit_ratio",
            "frtr",
            "prtr",
            "gap",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        for key in [
            "span_s",
            "exec_s",
            "hidden_config_s",
            "visible_config_s",
            "decision_s",
            "control_s",
            "idle_s",
            "hiding_efficiency",
            "effective_hit_ratio",
        ] {
            assert!(json["prtr"].get(key).is_some(), "missing prtr.{key}");
        }
        // Text round-trip re-parses to the same value tree.
        let text = serde_json::to_string(&report).unwrap();
        assert_eq!(serde_json::from_str(&text).unwrap(), json);
    }

    #[test]
    fn render_table_lists_all_buckets() {
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        let (_, f, p) = runs(0.02, 10, true);
        let params = params_for(&node, 0.02, 0.0);
        let table = AttributionReport::new("demo", &params, &f, &p).render_table();
        for label in [
            "exec",
            "config hidden",
            "config visible",
            "decision",
            "control",
            "idle",
            "hiding efficiency",
            "span",
        ] {
            assert!(table.contains(label), "missing {label} in:\n{table}");
        }
    }

    #[test]
    fn record_exports_gauges() {
        let (_, _, p) = runs(0.05, 8, true);
        let pa = RunAttribution::from_report("prtr", &p);
        let reg = Registry::new();
        pa.record(&reg, "exp.fig9");
        let snap = reg.snapshot();
        assert!((snap.gauges["exp.fig9.attr.span_s"] - pa.span_s).abs() < 1e-12);
        assert!(snap.gauges.contains_key("exp.fig9.attr.hiding_efficiency"));
        // Disabled registries record nothing.
        let noop = Registry::noop();
        pa.record(&noop, "x");
        assert!(noop.snapshot().gauges.is_empty());
    }
}
