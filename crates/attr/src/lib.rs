//! # hprc-attr — wall-clock attribution for simulator timelines
//!
//! The paper's argument is an accounting identity: PRTR wins only to the
//! extent that configuration time is *hidden* behind task execution
//! (equation (5)), which is why `S∞ ≤ 2` once `X_task ≥ 1` (equation
//! (7)). This crate makes that accounting explicit for every simulated
//! run: it classifies each nanosecond of a [`hprc_sim::trace::Timeline`]
//! into six exclusive buckets —
//!
//! | bucket | meaning |
//! |---|---|
//! | `exec` | a task is executing (and no configuration streams under it) |
//! | `hidden_config` | configuration overlapped by execution — off the critical path |
//! | `visible_config` | configuration exposed on the critical path |
//! | `decision` | exposed pre-fetch decision time |
//! | `control` | exposed transfer-of-control time |
//! | `idle` | nothing modeled is active (stalls, trailing transfers) |
//!
//! — with the machine-checked identity that the buckets sum *exactly*
//! (integer nanoseconds) to `Timeline::span_end()`. On top of the
//! buckets sit per-run observables ([`RunAttribution`]): hiding
//! efficiency `hidden/total` configuration, effective hit ratio, and the
//! measured-vs-analytical **bound gap** ([`BoundGap`]) against equation
//! (7)'s closed-form `S∞`. A paired FRTR/PRTR [`AttributionReport`]
//! serializes as the `<id>.attr.json` artifact written by
//! `hprc-exp --trace`.

pub mod buckets;
pub mod run;

pub use buckets::Buckets;
pub use run::{AttributionReport, BoundGap, RunAttribution};
