//! Exclusive wall-clock buckets over a [`Timeline`].
//!
//! Every nanosecond of a run's span is assigned to exactly one bucket by
//! a priority sweep over the per-class activity unions
//! ([`Timeline::class_intervals`]):
//!
//! 1. execution and configuration both active → **hidden configuration**
//!    (the overlap the PRTR argument lives on — equation (5) only charges
//!    the part of `T_PRTR` that sticks out past the running task);
//! 2. execution active → **exec**;
//! 3. configuration active → **visible configuration** (exposed on the
//!    critical path);
//! 4. decision active → **decision** (an overlapped decision falls under
//!    1–2, so this bucket captures only the exposed leading decision of
//!    equation (5));
//! 5. control active → **control**;
//! 6. nothing active → **idle** (stall: nothing the model accounts for is
//!    running; includes trailing data transfers).
//!
//! The buckets are integer nanoseconds, so the identity
//! `sum(buckets) == span_end` is exact, not approximate.

use hprc_sim::time::SimTime;
use hprc_sim::trace::{ActivityClass, Timeline};
use serde::{Deserialize, Serialize};

/// The six exclusive wall-clock buckets of one run, in nanoseconds.
///
/// Invariant (checked by [`Buckets::checked_from_timeline`] and
/// property-tested across randomized scenarios): the fields sum exactly
/// to `Timeline::span_end()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Buckets {
    /// Task execution not concurrently covered by bucket 1 (ns).
    pub exec_ns: u64,
    /// Configuration overlapped by task execution — hidden (ns).
    pub hidden_config_ns: u64,
    /// Configuration exposed on the critical path — visible (ns).
    pub visible_config_ns: u64,
    /// Exposed pre-fetch decision time (ns).
    pub decision_ns: u64,
    /// Exposed transfer-of-control time (ns).
    pub control_ns: u64,
    /// Nothing modeled is active (ns).
    pub idle_ns: u64,
}

/// A cursor over one class's merged interval union; `active(t)` walks
/// forward monotonically, so a full sweep is O(boundaries + intervals).
struct Cursor<'a> {
    intervals: &'a [(SimTime, SimTime)],
    next: usize,
}

impl<'a> Cursor<'a> {
    fn new(intervals: &'a [(SimTime, SimTime)]) -> Self {
        Cursor { intervals, next: 0 }
    }

    /// Whether the class is active at instant `t` (callers pass
    /// non-decreasing `t`).
    fn active(&mut self, t: u64) -> bool {
        while self.next < self.intervals.len() && self.intervals[self.next].1 .0 <= t {
            self.next += 1;
        }
        self.next < self.intervals.len() && self.intervals[self.next].0 .0 <= t
    }
}

impl Buckets {
    /// Classifies every nanosecond of `timeline` into the six buckets.
    pub fn from_timeline(timeline: &Timeline) -> Buckets {
        let span = timeline.span_end().0;
        let exec = timeline.class_intervals(ActivityClass::Exec);
        let config = timeline.class_intervals(ActivityClass::Config);
        let decision = timeline.class_intervals(ActivityClass::Decision);
        let control = timeline.class_intervals(ActivityClass::Control);

        // Elementary boundaries: every class transition, plus 0 and the
        // span end. Activity is constant on each elementary interval.
        let mut bounds: Vec<u64> = Vec::with_capacity(2 * (exec.len() + config.len() + 2));
        bounds.push(0);
        bounds.push(span);
        for list in [&exec, &config, &decision, &control] {
            for (s, e) in list {
                bounds.push(s.0);
                bounds.push(e.0);
            }
        }
        bounds.sort_unstable();
        bounds.dedup();

        let mut cur_exec = Cursor::new(&exec);
        let mut cur_config = Cursor::new(&config);
        let mut cur_decision = Cursor::new(&decision);
        let mut cur_control = Cursor::new(&control);

        let mut b = Buckets::default();
        for w in bounds.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t0 >= span {
                break;
            }
            let dur = t1.min(span) - t0;
            let e = cur_exec.active(t0);
            let c = cur_config.active(t0);
            let slot = if e && c {
                &mut b.hidden_config_ns
            } else if e {
                &mut b.exec_ns
            } else if c {
                &mut b.visible_config_ns
            } else if cur_decision.active(t0) {
                &mut b.decision_ns
            } else if cur_control.active(t0) {
                &mut b.control_ns
            } else {
                &mut b.idle_ns
            };
            *slot += dur;
        }
        b
    }

    /// [`Buckets::from_timeline`], then asserts the machine-checked sum
    /// identity `sum(buckets) == span_end` (exact, integer nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if the identity fails — which would mean the sweep itself
    /// is wrong, never the timeline.
    pub fn checked_from_timeline(timeline: &Timeline) -> Buckets {
        let b = Buckets::from_timeline(timeline);
        assert_eq!(
            b.total_ns(),
            timeline.span_end().0,
            "attribution identity violated: buckets {b:?} vs span {}",
            timeline.span_end().0
        );
        b
    }

    /// Sum of all six buckets (ns) — equals the timeline span by the
    /// identity.
    pub fn total_ns(&self) -> u64 {
        self.exec_ns
            + self.hidden_config_ns
            + self.visible_config_ns
            + self.decision_ns
            + self.control_ns
            + self.idle_ns
    }

    /// Total configuration-port busy time (ns): hidden + visible. Equals
    /// the config lane's busy time whenever configurations don't overlap
    /// each other (always true for the single-port executors).
    pub fn total_config_ns(&self) -> u64 {
        self.hidden_config_ns + self.visible_config_ns
    }

    /// Wall-clock time with at least one task executing (ns): the exec
    /// bucket plus the hidden-configuration overlap that runs under it.
    pub fn exec_wall_ns(&self) -> u64 {
        self.exec_ns + self.hidden_config_ns
    }

    /// Hiding efficiency `hidden_config / total_config` — the fraction
    /// of configuration time the runtime kept off the critical path
    /// (the quantity behind equation (5)'s `max` terms). `None` when the
    /// run performed no configuration at all (all-hit PRTR).
    pub fn hiding_efficiency(&self) -> Option<f64> {
        let total = self.total_config_ns();
        if total == 0 {
            None
        } else {
            Some(self.hidden_config_ns as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hprc_sim::time::SimDuration;
    use hprc_sim::trace::{EventKind, Lane};

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn empty_timeline_is_all_zero() {
        let b = Buckets::checked_from_timeline(&Timeline::default());
        assert_eq!(b, Buckets::default());
        assert_eq!(b.hiding_efficiency(), None);
    }

    #[test]
    fn fully_hidden_config_counts_as_hidden() {
        let mut tl = Timeline::default();
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(0.0), t(4.0));
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "c",
            t(1.0),
            t(2.0),
        );
        let b = Buckets::checked_from_timeline(&tl);
        assert_eq!(b.hidden_config_ns, 1_000_000_000);
        assert_eq!(b.visible_config_ns, 0);
        assert_eq!(b.exec_ns, 3_000_000_000);
        assert_eq!(b.hiding_efficiency(), Some(1.0));
    }

    #[test]
    fn partially_exposed_config_splits() {
        let mut tl = Timeline::default();
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(0.0), t(2.0));
        // Config streams from t=1 to t=5: 1 s hidden, 2 s visible, then
        // the next task runs 5..6.
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "c",
            t(1.0),
            t(5.0),
        );
        tl.push(Lane::Prr(1), EventKind::Exec, "b", t(5.0), t(6.0));
        let b = Buckets::checked_from_timeline(&tl);
        assert_eq!(b.hidden_config_ns, 1_000_000_000);
        assert_eq!(b.visible_config_ns, 3_000_000_000);
        assert_eq!(b.exec_ns, 2_000_000_000);
        assert_eq!(b.idle_ns, 0);
        let h = b.hiding_efficiency().unwrap();
        assert!((h - 0.25).abs() < 1e-12);
    }

    #[test]
    fn decision_and_control_only_count_when_exposed() {
        let mut tl = Timeline::default();
        // Exposed leading decision, then exec with an overlapped
        // decision inside it, then exposed control.
        tl.push(Lane::Host, EventKind::Decision, "d0", t(0.0), t(1.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(1.0), t(3.0));
        tl.push(Lane::Host, EventKind::Decision, "d1", t(1.5), t(2.5));
        tl.push(Lane::Host, EventKind::Control, "c", t(3.0), t(3.5));
        let b = Buckets::checked_from_timeline(&tl);
        assert_eq!(b.decision_ns, 1_000_000_000); // only the leading one
        assert_eq!(b.control_ns, 500_000_000);
        assert_eq!(b.exec_ns, 2_000_000_000);
        assert_eq!(b.idle_ns, 0);
    }

    #[test]
    fn gaps_count_as_idle() {
        let mut tl = Timeline::default();
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(0.0), t(1.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "b", t(3.0), t(4.0));
        // A trailing data drain extends the span past the last exec.
        tl.push(Lane::LinkOut, EventKind::DataOut, "o", t(4.0), t(5.0));
        let b = Buckets::checked_from_timeline(&tl);
        assert_eq!(b.exec_ns, 2_000_000_000);
        assert_eq!(b.idle_ns, 3_000_000_000);
        assert_eq!(b.total_ns(), tl.span_end().0);
    }

    #[test]
    fn exec_wall_includes_hidden_config() {
        let mut tl = Timeline::default();
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(0.0), t(2.0));
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "c",
            t(0.5),
            t(1.5),
        );
        let b = Buckets::checked_from_timeline(&tl);
        assert_eq!(b.exec_wall_ns(), 2_000_000_000);
        assert_eq!(b.total_config_ns(), 1_000_000_000);
    }
}
