//! Property tests of the attribution identity and the Eq (7) bound-gap
//! acceptance criteria.

use hprc_attr::{AttributionReport, Buckets, RunAttribution};
use hprc_ctx::ExecCtx;
use hprc_fpga::floorplan::Floorplan;
use hprc_model::params::{ModelParams, NormalizedTimes};
use hprc_sim::executor::{run_frtr, run_frtr_reference, run_prtr, run_prtr_reference};
use hprc_sim::node::NodeConfig;
use hprc_sim::task::{PrtrCall, TaskCall};
use hprc_sim::trace::ActivityClass;
use proptest::prelude::*;

fn xd1() -> NodeConfig {
    NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr())
}

/// Randomized PRTR scenarios: per-call (task-time scale, hit, slot).
fn calls_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((1u8..200, 0u8..2, 0u8..2), 1..25)
}

fn build_calls(node: &NodeConfig, spec: &[(u8, u8, u8)]) -> Vec<PrtrCall> {
    spec.iter()
        .enumerate()
        .map(|(i, &(scale, hit, slot))| PrtrCall {
            // Task times from ~2 ms to ~0.4 s: spans fully-hidden,
            // partially-exposed, and fully-exposed configuration regimes.
            task: TaskCall::with_task_time(format!("t{}", i % 4), node, scale as f64 * 2e-3),
            hit: hit == 1,
            slot: slot as usize % node.n_prrs,
        })
        .collect()
}

/// Sum of a class's merged interval union, nanoseconds.
fn class_busy_ns(tl: &hprc_sim::trace::Timeline, class: ActivityClass) -> u64 {
    tl.class_intervals(class)
        .iter()
        .map(|(s, e)| e.0 - s.0)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The six buckets partition the span *exactly* (integer
    /// nanoseconds — far stronger than the 1e-9 acceptance bound), for
    /// both executors on randomized scenarios, and the two config
    /// buckets reconstruct the configuration-port busy time.
    #[test]
    fn buckets_partition_span_exactly(spec in calls_strategy()) {
        let node = xd1();
        let calls = build_calls(&node, &spec);
        let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
        let ctx = ExecCtx::default();
        let f = run_frtr(&node, &frtr_calls, &ctx).unwrap();
        let p = run_prtr(&node, &calls, &ctx).unwrap();
        for report in [&f, &p] {
            // checked_from_timeline panics on any violation; assert the
            // identity explicitly as well so the property reads as one.
            let b = Buckets::checked_from_timeline(&report.timeline);
            prop_assert_eq!(b.total_ns(), report.timeline.span_end().0);
            prop_assert_eq!(
                b.total_config_ns(),
                class_busy_ns(&report.timeline, ActivityClass::Config)
            );
        }
    }

    /// Derived observables stay in range and FRTR hides nothing.
    #[test]
    fn observables_well_formed(spec in calls_strategy()) {
        let node = xd1();
        let calls = build_calls(&node, &spec);
        let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
        let ctx = ExecCtx::default();
        let f = run_frtr(&node, &frtr_calls, &ctx).unwrap();
        let p = run_prtr(&node, &calls, &ctx).unwrap();
        let fa = RunAttribution::from_report("frtr", &f);
        let pa = RunAttribution::from_report("prtr", &p);
        // FRTR serializes configuration before execution: zero overlap.
        prop_assert_eq!(fa.hiding_efficiency, Some(0.0));
        prop_assert_eq!(fa.effective_hit_ratio, 0.0);
        if let Some(h) = pa.hiding_efficiency {
            prop_assert!((0.0..=1.0).contains(&h));
        }
        prop_assert!((0.0..=1.0).contains(&pa.effective_hit_ratio));
        let n_miss = spec.iter().filter(|&&(_, hit, _)| hit == 0).count() as u64;
        prop_assert_eq!(pa.n_config, n_miss);
    }

    /// The partition identity survives run-length-encoded timelines:
    /// long periodic workloads make the executors' steady-state fast
    /// path store `Repeat` items instead of per-call events, and the
    /// buckets computed from the compressed timeline must be identical
    /// to the per-call reference executor's.
    #[test]
    fn buckets_identical_on_rle_timelines(
        scale in 1u8..100,
        reps in 30usize..80,
        all_miss in any::<bool>(),
    ) {
        let node = xd1();
        let calls: Vec<PrtrCall> = (0..reps * 3)
            .map(|i| PrtrCall {
                task: TaskCall::with_task_time(
                    format!("t{}", i % 3),
                    &node,
                    scale as f64 * 2e-3,
                ),
                hit: !all_miss && i > 0,
                slot: i % node.n_prrs,
            })
            .collect();
        let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
        let ctx = ExecCtx::default();
        let fast = run_prtr(&node, &calls, &ctx).unwrap();
        let reference = run_prtr_reference(&node, &calls, &ctx).unwrap();
        // The fast path must actually have compressed, or this test
        // exercises nothing.
        prop_assert!(fast.timeline.n_items() < fast.timeline.len() as usize / 2);
        let fb = Buckets::checked_from_timeline(&fast.timeline);
        let rb = Buckets::checked_from_timeline(&reference.timeline);
        prop_assert_eq!(&fb, &rb);
        prop_assert_eq!(fb.total_ns(), fast.timeline.span_end().0);

        let f_fast = run_frtr(&node, &frtr_calls, &ctx).unwrap();
        let f_ref = run_frtr_reference(&node, &frtr_calls, &ctx).unwrap();
        prop_assert!(f_fast.timeline.n_items() < f_fast.timeline.len() as usize / 2);
        let fb = Buckets::checked_from_timeline(&f_fast.timeline);
        let rb = Buckets::checked_from_timeline(&f_ref.timeline);
        prop_assert_eq!(&fb, &rb);
        prop_assert_eq!(fb.total_ns(), f_fast.timeline.span_end().0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance criterion: with `X_decision = X_control = 0` and
    /// `H = 1` the measured speedup matches Eq (7)'s
    /// `(1 + X_task)/X_task` to full f64 precision.
    #[test]
    fn eq7_exact_with_zero_overheads_all_hits(
        scale in 1u8..=250,
        n in 2usize..40,
    ) {
        let mut node = xd1();
        node.control_overhead_s = 0.0;
        node.decision_latency_s = 0.0;
        let calls: Vec<PrtrCall> = (0..n)
            .map(|i| PrtrCall {
                task: TaskCall::with_task_time("t", &node, scale as f64 * 1e-3),
                hit: true,
                slot: i % node.n_prrs,
            })
            .collect();
        let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
        let ctx = ExecCtx::default();
        let f = run_frtr(&node, &frtr_calls, &ctx).unwrap();
        let p = run_prtr(&node, &calls, &ctx).unwrap();

        // Realized (post-quantization) per-call durations, exact in ns.
        let t_ns = (f.calls[0].exec_end - f.calls[0].exec_start).0;
        let f_ns = (f.calls[0].config_end.unwrap() - f.calls[0].config_start.unwrap()).0;
        prop_assert_eq!(f.total.0, n as u64 * (f_ns + t_ns));
        prop_assert_eq!(p.total.0, n as u64 * t_ns);

        let measured = f.total_s() / p.total_s();
        let x_task = t_ns as f64 / f_ns as f64;
        let eq7 = (1.0 + x_task) / x_task;
        let rel = ((measured - eq7) / eq7).abs();
        prop_assert!(rel <= 4.0 * f64::EPSILON, "measured {measured} vs eq7 {eq7}, rel {rel}");

        // And the full report agrees: Eq (7) at these parameters IS the
        // measured speedup, so the bound gap collapses to rounding.
        let params = ModelParams::new(
            NormalizedTimes {
                x_task,
                x_control: 0.0,
                x_decision: 0.0,
                x_prtr: node.t_prtr_s() / node.t_frtr_s(),
            },
            1.0,
            n as u64,
        )
        .unwrap();
        let report = AttributionReport::new("eq7", &params, &f, &p);
        prop_assert!((report.gap.bound_gap / eq7).abs() <= 4.0 * f64::EPSILON);
        // All-hit PRTR performs no configuration at all.
        prop_assert_eq!(report.prtr.n_config, 0);
        prop_assert_eq!(report.prtr.hiding_efficiency, None);
        prop_assert!((report.prtr.effective_hit_ratio - 1.0).abs() < 1e-15);
    }
}
