//! The six-bucket attribution identity on *preemptive* schedules:
//! context-save ([`EventKind::Preempt`]) and context-restore
//! ([`EventKind::Restore`]) events classify as configuration activity,
//! so `sum(buckets) == span_end` must keep holding exactly — including
//! on the fast path's run-length-encoded timelines — and the two config
//! buckets must reconstruct the configuration-port busy time with
//! save/restore transfers included.

use hprc_attr::Buckets;
use hprc_ctx::{ExecCtx, Symbol};
use hprc_fault::{FaultPlan, FaultSpec, RecoveryPolicy};
use hprc_fpga::floorplan::Floorplan;
use hprc_sched::preempt::{
    simulate_preemptive, Edf, PreemptCosts, RtTask, ScheduleSegment, StrictPriority,
};
use hprc_sched::TaskId;
use hprc_sim::node::NodeConfig;
use hprc_sim::preempt::{run_preemptive, run_preemptive_reference, PreemptSegment};
use hprc_sim::time::{SimDuration, SimTime};
use hprc_sim::trace::ActivityClass;
use proptest::prelude::*;

fn to_sim_segments(segments: &[ScheduleSegment]) -> Vec<PreemptSegment> {
    const NAMES: [&str; 3] = ["Median Filter", "Sobel Filter", "Smoothing Filter"];
    segments
        .iter()
        .map(|s| PreemptSegment {
            name: Symbol::from(NAMES[s.task.0 % NAMES.len()]),
            slot: s.slot,
            decision_start: SimTime(s.decision.start_ns),
            decision_end: SimTime(s.decision.end_ns),
            config: s.config.map(|w| (SimTime(w.start_ns), SimTime(w.end_ns))),
            config_clean: SimDuration(s.config_clean_ns),
            restore: s.restore.map(|w| (SimTime(w.start_ns), SimTime(w.end_ns))),
            restore_clean: SimDuration(s.restore_clean_ns),
            control_start: SimTime(s.control.start_ns),
            control_end: SimTime(s.control.end_ns),
            exec_start: SimTime(s.exec.start_ns),
            exec_end: SimTime(s.exec.end_ns),
            save: s.save.map(|w| (SimTime(w.start_ns), SimTime(w.end_ns))),
            hit: s.hit,
            forced_full: s.forced_full,
            resumed: s.resumed,
            preempted: s.preempted,
            dropped: s.dropped,
            clean: s.clean,
        })
        .collect()
}

fn costs() -> PreemptCosts {
    PreemptCosts {
        t_decision_s: 2e-6,
        t_control_s: 4.8e-6,
        t_partial_s: 1e-3,
        t_full_s: 14e-3,
        quantum_s: 0.5e-3,
        port_bytes_per_s: 1e8,
    }
}

fn class_busy_ns(tl: &hprc_sim::trace::Timeline, class: ActivityClass) -> u64 {
    tl.class_intervals(class)
        .iter()
        .map(|(s, e)| e.0 - s.0)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identity and config-busy reconstruction on engine-produced
    /// preemptive schedules across policies and fault regimes.
    #[test]
    fn buckets_partition_preemptive_spans_exactly(
        specs in proptest::collection::vec(
            ((0..3usize, 1..30u64, 5..60u64), (0..3u32, 1..6usize, 0..20u64)),
            1..4,
        ),
        edf in any::<bool>(),
        armed in any::<bool>(),
        fault_seed in any::<u64>(),
    ) {
        let tasks: Vec<RtTask> = specs
            .iter()
            .map(|&((task, exec, period), (priority, frames, phase))| RtTask {
                task: TaskId(task),
                exec_s: exec as f64 * 1e-4,
                period_s: period as f64 * 1e-4,
                deadline_s: period as f64 * 1e-4,
                priority,
                state_bytes: 100_000,
                frames,
                phase_s: phase as f64 * 1e-4,
            })
            .collect();
        let plan = if armed {
            FaultPlan::new(FaultSpec::uniform(0.2), RecoveryPolicy::default(), fault_seed)
        } else {
            FaultPlan::disarmed()
        };
        let outcome = if edf {
            simulate_preemptive(
                &tasks, 2, &mut Edf::new(), &costs(), &plan, &ExecCtx::default())
        } else {
            simulate_preemptive(
                &tasks, 2, &mut StrictPriority::new(), &costs(), &plan, &ExecCtx::default())
        };
        prop_assume!(!outcome.segments.is_empty());
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        let segments = to_sim_segments(&outcome.segments);
        let ctx = ExecCtx::default();
        let fast = run_preemptive(&node, &segments, &ctx).unwrap();
        let reference = run_preemptive_reference(&node, &segments, &ctx).unwrap();

        for report in [&fast, &reference] {
            let b = Buckets::checked_from_timeline(&report.timeline);
            prop_assert_eq!(b.total_ns(), report.timeline.span_end().0);
            // Save/restore transfers classify as config: the two config
            // buckets must reconstruct the port's busy-interval union.
            prop_assert_eq!(
                b.total_config_ns(),
                class_busy_ns(&report.timeline, ActivityClass::Config)
            );
        }
        let fb = Buckets::checked_from_timeline(&fast.timeline);
        let rb = Buckets::checked_from_timeline(&reference.timeline);
        prop_assert_eq!(&fb, &rb);
    }
}

/// On a schedule with genuine checkpoints, save/restore wall-clock must
/// show up inside the config buckets: stripping the `Preempt`/`Restore`
/// events from the timeline strictly reduces `total_config_ns`.
#[test]
fn save_restore_time_is_attributed_to_config() {
    let tasks = [
        RtTask {
            task: TaskId(0),
            exec_s: 20e-3,
            period_s: 100e-3,
            deadline_s: 100e-3,
            priority: 3,
            state_bytes: 400_000,
            frames: 2,
            phase_s: 0.0,
        },
        RtTask {
            task: TaskId(1),
            exec_s: 1e-3,
            period_s: 5e-3,
            deadline_s: 5e-3,
            priority: 0,
            state_bytes: 20_000,
            frames: 12,
            phase_s: 1e-3,
        },
    ];
    let outcome = simulate_preemptive(
        &tasks,
        1,
        &mut StrictPriority::new(),
        &costs(),
        &FaultPlan::disarmed(),
        &ExecCtx::default(),
    );
    assert!(outcome.stats.preemptions > 0);
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let with = to_sim_segments(&outcome.segments);
    let without: Vec<PreemptSegment> = with
        .iter()
        .map(|s| PreemptSegment {
            save: None,
            restore: None,
            ..*s
        })
        .collect();
    let ctx = ExecCtx::default();
    let full = run_preemptive_reference(&node, &with, &ctx).unwrap();
    let stripped = run_preemptive_reference(&node, &without, &ctx).unwrap();
    let b_full = Buckets::checked_from_timeline(&full.timeline);
    let b_stripped = Buckets::checked_from_timeline(&stripped.timeline);
    assert!(
        b_full.total_config_ns() > b_stripped.total_config_ns(),
        "save/restore transfers must add config time: {} vs {}",
        b_full.total_config_ns(),
        b_stripped.total_config_ns()
    );
}
