//! The simulated HPRC node: a Cray XD1 blade's acceleration subsystem
//! (Figure 6) reduced to the parameters that govern the execution model.

use hprc_fpga::floorplan::Floorplan;
use serde::{Deserialize, Serialize};

use crate::cray_api::CrayConfigApi;
use crate::icap::IcapPath;
use crate::time::SimDuration;

/// Node-level timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Realized host↔FPGA I/O bandwidth, bytes/s (1.4 GB/s on XD1).
    pub io_bytes_per_sec: f64,
    /// Application-core clock, Hz (200 MHz for the Table 1 filters).
    pub core_clock_hz: f64,
    /// Bytes a streaming core consumes per clock.
    pub core_bytes_per_clock: f64,
    /// Pipeline fill latency, clocks.
    pub pipeline_fill_clocks: u32,
    /// Transfer-of-control overhead per call, seconds (measured ≈ 10 µs).
    pub control_overhead_s: f64,
    /// Pre-fetch decision latency `T_decision`, seconds.
    pub decision_latency_s: f64,
    /// The ICAP partial-configuration path.
    pub icap: IcapPath,
    /// The vendor full-configuration API.
    pub full_config: CrayConfigApi,
    /// Partial-bitstream size per PRR, bytes.
    pub prr_bitstream_bytes: u64,
    /// Number of PRRs in the layout.
    pub n_prrs: usize,
    /// When true, a partial reconfiguration may only start once the
    /// previous task's input data has fully arrived (the input channel is
    /// shared between bitstreams and data — section 4.1). When false, the
    /// idealized overlap of the analytical model is used.
    pub config_waits_for_data_input: bool,
}

impl NodeConfig {
    /// The **measured** Cray XD1 (Table 2's measured column): real vendor
    /// API overhead and the calibrated ICAP path.
    pub fn xd1_measured(floorplan: &Floorplan) -> NodeConfig {
        NodeConfig {
            io_bytes_per_sec: 1.4e9,
            core_clock_hz: 200e6,
            core_bytes_per_clock: 1.0,
            pipeline_fill_clocks: 1024,
            control_overhead_s: 10e-6,
            decision_latency_s: 0.0,
            icap: IcapPath::xd1(),
            full_config: CrayConfigApi::xd1_measured(floorplan.device.full_bitstream_bytes()),
            prr_bitstream_bytes: floorplan
                .mean_prr_bitstream_bytes()
                .expect("valid floorplan")
                .round() as u64,
            n_prrs: floorplan.prrs.len(),
            config_waits_for_data_input: false,
        }
    }

    /// The **estimated** (best-case) Cray XD1 (Table 2's estimated column):
    /// raw port rates, no API overhead.
    pub fn xd1_estimated(floorplan: &Floorplan) -> NodeConfig {
        NodeConfig {
            icap: IcapPath::ideal(),
            full_config: CrayConfigApi::ideal(floorplan.device.full_bitstream_bytes()),
            ..NodeConfig::xd1_measured(floorplan)
        }
    }

    /// The node for a context's [`Calibration`](hprc_ctx::Calibration)
    /// selection: `Measured` → [`NodeConfig::xd1_measured`],
    /// `Estimated` → [`NodeConfig::xd1_estimated`].
    pub fn for_calibration(
        floorplan: &Floorplan,
        calibration: hprc_ctx::Calibration,
    ) -> NodeConfig {
        match calibration {
            hprc_ctx::Calibration::Measured => NodeConfig::xd1_measured(floorplan),
            hprc_ctx::Calibration::Estimated => NodeConfig::xd1_estimated(floorplan),
        }
    }

    /// Full configuration time `T_FRTR` in seconds.
    pub fn t_frtr_s(&self) -> f64 {
        self.full_config.full_configuration_time_s()
    }

    /// Average partial configuration time `T_PRTR` in seconds.
    pub fn t_prtr_s(&self) -> f64 {
        self.icap.transfer_time_s(self.prr_bitstream_bytes)
    }

    /// Normalized partial configuration time `X_PRTR = T_PRTR / T_FRTR`.
    pub fn x_prtr(&self) -> f64 {
        self.t_prtr_s() / self.t_frtr_s()
    }

    /// Streaming task time for a call moving `bytes_in` in and `bytes_out`
    /// out: rate-limited by the slowest of input, core, and output, plus
    /// one pipeline fill.
    pub fn task_time_s(&self, bytes_in: u64, bytes_out: u64) -> f64 {
        let t_in = bytes_in as f64 / self.io_bytes_per_sec;
        let t_out = bytes_out as f64 / self.io_bytes_per_sec;
        let t_core = bytes_in as f64 / (self.core_clock_hz * self.core_bytes_per_clock);
        let fill = self.pipeline_fill_clocks as f64 / self.core_clock_hz;
        t_in.max(t_core).max(t_out) + fill
    }

    /// Data size (symmetric in/out) whose task time equals `t_task` —
    /// the knob section 4.3 turns to sweep the x-axis of Figure 9.
    pub fn bytes_for_task_time(&self, t_task: f64) -> u64 {
        let fill = self.pipeline_fill_clocks as f64 / self.core_clock_hz;
        let effective = (t_task - fill).max(0.0);
        let bottleneck = self
            .io_bytes_per_sec
            .min(self.core_clock_hz * self.core_bytes_per_clock);
        (effective * bottleneck) as u64
    }

    /// Input-transfer duration for `bytes` (used by the shared-channel
    /// ablation).
    pub fn data_in_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.io_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hprc_fpga::floorplan::Floorplan;

    #[test]
    fn measured_node_reproduces_table2_ratios() {
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        assert!((node.t_frtr_s() * 1e3 - 1678.04).abs() < 0.1);
        assert!((node.t_prtr_s() * 1e3 - 19.77).abs() < 0.1);
        // Table 2: measured dual-PRR X_PRTR = 0.012.
        assert!(
            (node.x_prtr() - 0.012).abs() < 0.0005,
            "x = {}",
            node.x_prtr()
        );
    }

    #[test]
    fn estimated_node_reproduces_table2_ratios() {
        let node = NodeConfig::xd1_estimated(&Floorplan::xd1_dual_prr());
        assert!((node.t_frtr_s() * 1e3 - 36.09).abs() < 0.05);
        assert!((node.t_prtr_s() * 1e3 - 6.12).abs() < 0.05);
        // Table 2: estimated dual-PRR X_PRTR = 0.17.
        assert!(
            (node.x_prtr() - 0.17).abs() < 0.002,
            "x = {}",
            node.x_prtr()
        );
    }

    #[test]
    fn single_prr_ratios() {
        let node = NodeConfig::xd1_estimated(&Floorplan::xd1_single_prr());
        // Table 2: estimated single-PRR X_PRTR = 0.37 (ours: 889,648 B).
        assert!(
            (node.x_prtr() - 0.37).abs() < 0.005,
            "x = {}",
            node.x_prtr()
        );
        assert_eq!(node.n_prrs, 1);
    }

    #[test]
    fn for_calibration_selects_the_table2_column() {
        let fp = Floorplan::xd1_dual_prr();
        assert_eq!(
            NodeConfig::for_calibration(&fp, hprc_ctx::Calibration::Measured),
            NodeConfig::xd1_measured(&fp)
        );
        assert_eq!(
            NodeConfig::for_calibration(&fp, hprc_ctx::Calibration::Estimated),
            NodeConfig::xd1_estimated(&fp)
        );
    }

    #[test]
    fn task_time_inversion() {
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        for target in [0.005, 0.05, 0.5, 2.0] {
            let bytes = node.bytes_for_task_time(target);
            let t = node.task_time_s(bytes, bytes);
            assert!((t - target).abs() / target < 0.01, "{target} -> {t}");
        }
    }
}
