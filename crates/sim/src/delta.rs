//! Whole-run memoization of executor reports.
//!
//! A sweep re-dispatching an identical `(node, call sequence, fault
//! plan)` triple — the warm half of a bench pass, a re-rendered
//! artifact, the `summary` experiment re-visiting a panel — re-derives
//! a report the process already computed. When the context carries an
//! enabled [`hprc_obs::DeltaCache`], the executors
//! ([`crate::executor::run_frtr`], [`crate::executor::run_prtr`],
//! [`crate::preempt::run_preemptive`]) memoize their finished
//! [`ExecutionReport`]s under a full-input key and replay them as one
//! clone.
//!
//! Two gates keep this sound:
//!
//! * **store** whenever the cache is enabled and the steady-state fast
//!   path is on — the report is a pure function of the key, whether or
//!   not the run was instrumented;
//! * **replay** only into *quiet* contexts (no live registry, no live
//!   journal): an instrumented run must lay out its per-call counter,
//!   histogram, and journal records, which a cloned report cannot
//!   carry. The `run_*_reference` oracles (`enable_jump == false`)
//!   never store nor replay, so fast-vs-reference equivalence tests
//!   keep their teeth.
//!
//! Keys serialize every input the run reads: a domain tag, the node
//! calibration (exact `Debug` of every `f64`), the effective (armed)
//! fault plan, and the packed call or segment sequence. Reports are
//! held as `Arc<ExecutionReport>` in the same byte-bounded store the
//! scheduler's skeletons live in.

use std::sync::Arc;

use hprc_ctx::ExecCtx;
use hprc_fault::FaultPlan;
use hprc_obs::delta::bytes as dbytes;
use hprc_obs::DeltaCache;

use crate::executor::ExecutionReport;
use crate::node::NodeConfig;
use crate::preempt::PreemptSegment;
use crate::task::{PrtrCall, TaskCall};

/// Whether a memoized report may be *returned* in `ctx`: only a quiet
/// context observes nothing but the report itself.
pub(crate) fn replay_allowed(ctx: &ExecCtx) -> bool {
    !ctx.registry.is_enabled() && !ctx.journal.is_enabled()
}

fn key_header(k: &mut Vec<u8>, domain: &str, node: &NodeConfig, plan: Option<&FaultPlan>) {
    dbytes::put_str(k, domain);
    dbytes::put_str(k, &format!("{node:?}"));
    match plan {
        Some(p) => dbytes::put_str(k, &format!("{p:?}")),
        None => dbytes::put_u64(k, 0),
    }
}

/// Full-input key of an FRTR run.
pub(crate) fn frtr_key(node: &NodeConfig, calls: &[TaskCall], plan: Option<&FaultPlan>) -> Vec<u8> {
    let mut k = Vec::with_capacity(128 + calls.len() * 32);
    key_header(&mut k, "sim.frtr", node, plan);
    dbytes::put_u64(&mut k, calls.len() as u64);
    for c in calls {
        dbytes::put_str(&mut k, c.name.as_str());
        dbytes::put_u64(&mut k, c.bytes_in);
        dbytes::put_u64(&mut k, c.bytes_out);
    }
    k
}

/// Full-input key of a PRTR run.
pub(crate) fn prtr_key(node: &NodeConfig, calls: &[PrtrCall], plan: Option<&FaultPlan>) -> Vec<u8> {
    let mut k = Vec::with_capacity(128 + calls.len() * 40);
    key_header(&mut k, "sim.prtr", node, plan);
    dbytes::put_u64(&mut k, calls.len() as u64);
    for c in calls {
        dbytes::put_str(&mut k, c.task.name.as_str());
        dbytes::put_u64(&mut k, c.task.bytes_in);
        dbytes::put_u64(&mut k, c.task.bytes_out);
        dbytes::put_u64(&mut k, ((c.hit as u64) << 32) | c.slot as u64);
    }
    k
}

fn put_opt_window(k: &mut Vec<u8>, w: Option<(crate::time::SimTime, crate::time::SimTime)>) {
    match w {
        Some((s, e)) => {
            dbytes::put_u64(k, 1);
            dbytes::put_u64(k, s.0);
            dbytes::put_u64(k, e.0);
        }
        None => dbytes::put_u64(k, 0),
    }
}

/// Full-input key of a preemptive schedule rendering.
pub(crate) fn preempt_key(node: &NodeConfig, segments: &[PreemptSegment]) -> Vec<u8> {
    let mut k = Vec::with_capacity(128 + segments.len() * 128);
    key_header(&mut k, "sim.preempt", node, None);
    dbytes::put_u64(&mut k, segments.len() as u64);
    for s in segments {
        dbytes::put_str(&mut k, s.name.as_str());
        dbytes::put_u64(&mut k, s.slot as u64);
        dbytes::put_u64(&mut k, s.decision_start.0);
        dbytes::put_u64(&mut k, s.decision_end.0);
        put_opt_window(&mut k, s.config);
        dbytes::put_u64(&mut k, s.config_clean.0);
        put_opt_window(&mut k, s.restore);
        dbytes::put_u64(&mut k, s.restore_clean.0);
        dbytes::put_u64(&mut k, s.control_start.0);
        dbytes::put_u64(&mut k, s.control_end.0);
        dbytes::put_u64(&mut k, s.exec_start.0);
        dbytes::put_u64(&mut k, s.exec_end.0);
        put_opt_window(&mut k, s.save);
        let flags = (s.hit as u64)
            | (s.forced_full as u64) << 1
            | (s.resumed as u64) << 2
            | (s.preempted as u64) << 3
            | (s.dropped as u64) << 4
            | (s.clean as u64) << 5;
        dbytes::put_u64(&mut k, flags);
    }
    k
}

/// Looks a memoized report up (counts one lookup when the cache is
/// enabled).
pub(crate) fn fetch(delta: &DeltaCache, key: &[u8]) -> Option<Arc<ExecutionReport>> {
    delta.get(key).and_then(|v| v.downcast().ok())
}

/// Stores a finished report under `key`.
pub(crate) fn store(delta: &DeltaCache, key: Vec<u8>, report: &ExecutionReport) {
    let bytes = 128
        + report.calls.len() as u64 * std::mem::size_of::<crate::executor::CallTiming>() as u64
        + report.timeline.n_items() as u64 * 64;
    delta.put(key, Arc::new(report.clone()), bytes);
}

#[cfg(test)]
mod tests {
    use hprc_ctx::ExecCtx;
    use hprc_fpga::floorplan::Floorplan;
    use hprc_obs::{DeltaCache, Registry};

    use crate::executor::{run_frtr, run_prtr, run_prtr_reference};
    use crate::node::NodeConfig;
    use crate::task::{PrtrCall, TaskCall};

    fn node() -> NodeConfig {
        NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr())
    }

    fn calls(node: &NodeConfig, n: usize) -> Vec<PrtrCall> {
        (0..n)
            .map(|i| PrtrCall {
                task: TaskCall::with_task_time(format!("t{}", i % 3), node, node.t_prtr_s()),
                hit: i % 4 == 3,
                slot: i % node.n_prrs,
            })
            .collect()
    }

    #[test]
    fn quiet_rerun_is_a_whole_run_hit() {
        let node = node();
        let calls = calls(&node, 60);
        let tasks: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
        let delta = DeltaCache::new(1 << 22);
        let ctx = ExecCtx::default().with_delta(delta.clone());
        let plain = ExecCtx::default();

        let first_p = run_prtr(&node, &calls, &ctx).unwrap();
        let first_f = run_frtr(&node, &tasks, &ctx).unwrap();
        assert_eq!(delta.account().unwrap().misses, 2);
        let second_p = run_prtr(&node, &calls, &ctx).unwrap();
        let second_f = run_frtr(&node, &tasks, &ctx).unwrap();
        let acct = delta.account().unwrap();
        assert_eq!(acct.full_hits, 2);
        assert_eq!(acct.calls_replayed, 120);

        assert_eq!(first_p, second_p);
        assert_eq!(first_f, second_f);
        assert_eq!(first_p, run_prtr(&node, &calls, &plain).unwrap());
        assert_eq!(first_f, run_frtr(&node, &tasks, &plain).unwrap());
    }

    #[test]
    fn instrumented_runs_store_but_never_replay() {
        let node = node();
        let calls = calls(&node, 40);
        let delta = DeltaCache::new(1 << 22);
        let reg = Registry::new();
        let ictx = ExecCtx::default()
            .with_delta(delta.clone())
            .with_registry(reg.clone());

        let a = run_prtr(&node, &calls, &ictx).unwrap();
        let snap_once = reg.snapshot();
        let b = run_prtr(&node, &calls, &ictx).unwrap();
        assert_eq!(a, b);
        // Both instrumented runs laid their records out longhand.
        assert_eq!(delta.account().unwrap().full_hits, 0);
        assert_eq!(
            reg.snapshot().counters["sim.prtr.calls"],
            2 * snap_once.counters["sim.prtr.calls"]
        );

        // A quiet run replays what the instrumented run stored.
        let qctx = ExecCtx::default().with_delta(delta.clone());
        assert_eq!(a, run_prtr(&node, &calls, &qctx).unwrap());
        assert_eq!(delta.account().unwrap().full_hits, 1);
    }

    #[test]
    fn reference_runs_never_touch_the_memo() {
        let node = node();
        let calls = calls(&node, 40);
        let delta = DeltaCache::new(1 << 22);
        let ctx = ExecCtx::default().with_delta(delta.clone());
        let a = run_prtr_reference(&node, &calls, &ctx).unwrap();
        let b = run_prtr_reference(&node, &calls, &ctx).unwrap();
        assert_eq!(a, b);
        let acct = delta.account().unwrap();
        assert_eq!(acct.lookups + acct.stored, 0);
    }

    #[test]
    fn distinct_inputs_key_apart() {
        let node = node();
        let calls_a = calls(&node, 30);
        let mut calls_b = calls_a.clone();
        calls_b[17].hit = !calls_b[17].hit;
        let delta = DeltaCache::new(1 << 22);
        let ctx = ExecCtx::default().with_delta(delta.clone());
        let a = run_prtr(&node, &calls_a, &ctx).unwrap();
        let b = run_prtr(&node, &calls_b, &ctx).unwrap();
        assert_ne!(a, b);
        assert_eq!(delta.account().unwrap().misses, 2);
        assert_eq!(a, run_prtr(&node, &calls_a, &ExecCtx::default()).unwrap());
        assert_eq!(b, run_prtr(&node, &calls_b, &ExecCtx::default()).unwrap());
    }
}
