//! Task calls: the unit of work of the execution model (Figure 2).

use hprc_ctx::Symbol;
use serde::{Deserialize, Serialize};

use crate::node::NodeConfig;

/// One hardware function call: which core it needs and how much data it
/// moves. `Copy`: the name is an interned [`Symbol`], so building the
/// millions of steady-state calls a sweep simulates allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskCall {
    /// Module-library name of the core (e.g. `"Median Filter"`).
    pub name: Symbol,
    /// Input bytes streamed host → FPGA.
    pub bytes_in: u64,
    /// Output bytes streamed FPGA → host.
    pub bytes_out: u64,
}

impl TaskCall {
    /// A call with symmetric input/output sizes (image in, image out).
    pub fn symmetric(name: impl Into<Symbol>, bytes: u64) -> TaskCall {
        TaskCall {
            name: name.into(),
            bytes_in: bytes,
            bytes_out: bytes,
        }
    }

    /// A call sized so its task time equals `t_task` seconds on `node`.
    pub fn with_task_time(name: impl Into<Symbol>, node: &NodeConfig, t_task: f64) -> TaskCall {
        TaskCall::symmetric(name, node.bytes_for_task_time(t_task))
    }

    /// This call's task time on `node`, seconds.
    pub fn task_time_s(&self, node: &NodeConfig) -> f64 {
        node.task_time_s(self.bytes_in, self.bytes_out)
    }
}

/// A PRTR call annotated with its cache outcome (from `hprc-sched` or any
/// other source): whether the configuration was already resident and which
/// PRR slot serves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrtrCall {
    /// The task call.
    pub task: TaskCall,
    /// True when the configuration was pre-fetched (Figure 4(b)); false
    /// when a partial reconfiguration must be charged (Figure 4(a)).
    pub hit: bool,
    /// PRR slot index serving this call.
    pub slot: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hprc_fpga::floorplan::Floorplan;

    #[test]
    fn with_task_time_hits_the_target() {
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        let call = TaskCall::with_task_time("Sobel Filter", &node, 0.1);
        assert!((call.task_time_s(&node) - 0.1).abs() < 0.001);
        assert_eq!(call.bytes_in, call.bytes_out);
    }

    #[test]
    fn symmetric_sets_both_directions() {
        let c = TaskCall::symmetric("Median Filter", 1024);
        assert_eq!(c.bytes_in, 1024);
        assert_eq!(c.bytes_out, 1024);
    }
}
