//! Renderer for preemptive schedules: turns the explicit windows the
//! `hprc-sched` preemptible engine computed into the same
//! [`ExecutionReport`] the run-to-completion executors produce —
//! timeline events (including [`EventKind::Preempt`] context saves and
//! [`EventKind::Restore`] write-backs), per-dispatch timings, metrics,
//! and causal journal spans with `preempt`/`save`/`restore` flow links.
//!
//! Unlike [`run_frtr`](crate::executor::run_frtr)/[`run_prtr`](crate::executor::run_prtr),
//! the timing here is *given* (the engine already resolved contention
//! and preemption), so the renderer is a pure, time-translation-
//! invariant function of each segment's shape. That makes the
//! steady-state fast path simpler and exact: a segment's key is its
//! window layout relative to its own decision start plus the gap to the
//! previous segment, salted by its preemption/fault shape — equal keys
//! over a whole period imply the rendered output repeats verbatim up to
//! a constant shift, so the closed-form jump (RLE timeline block,
//! shifted timings, bulk metrics, [`hprc_obs::Journal::replay_cycle`])
//! is bit-identical to the per-segment path. [`run_preemptive_reference`]
//! is the per-segment oracle, exactly as for the other executors.
//!
//! Journal causality: each task gets one stable `ctx:{name}` anchor
//! span (its host-side context buffer), opened before any segment and
//! closed after the last. A checkpoint links `execute → save` with kind
//! `preempt` and `save → ctx:{name}` with kind `save`; a resume links
//! `ctx:{name} → restore` with kind `restore` and `restore → execute`
//! with kind `activate`. Every link is either intra-segment or touches
//! a stable out-of-block anchor id, so cycle replay stays exact.

use std::collections::HashMap;

use hprc_ctx::{ExecCtx, Symbol};
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::executor::{
    verified_periods, CallTiming, ExecutionReport, LabelCache, SeenAt, L_CFG, L_CTL, L_DEC, L_FULL,
    L_RCV, L_RES, L_SAV,
};
use crate::node::NodeConfig;
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventKind, Lane, Timeline};

/// One dispatch of one task onto one PRR, with every window already
/// resolved by the scheduler (absolute simulation times). Transfer
/// windows cover their whole fault chain; the `*_clean` durations mark
/// the nominal prefix, the excess renders as [`EventKind::Recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptSegment {
    /// Task name (interned).
    pub name: Symbol,
    /// PRR slot executed on.
    pub slot: usize,
    /// Decision window start.
    pub decision_start: SimTime,
    /// Decision window end.
    pub decision_end: SimTime,
    /// Configuration transfer window (absent on a hit).
    pub config: Option<(SimTime, SimTime)>,
    /// Clean prefix of `config`.
    pub config_clean: SimDuration,
    /// Context write-back window (present when `resumed`).
    pub restore: Option<(SimTime, SimTime)>,
    /// Clean prefix of `restore`.
    pub restore_clean: SimDuration,
    /// Control window start (zero-length when `dropped`).
    pub control_start: SimTime,
    /// Control window end.
    pub control_end: SimTime,
    /// Execution window start.
    pub exec_start: SimTime,
    /// Execution window end (the checkpoint instant when `preempted`;
    /// equals `exec_start` when `dropped`).
    pub exec_end: SimTime,
    /// Context readback window (present when `preempted`).
    pub save: Option<(SimTime, SimTime)>,
    /// The configuration was resident: no transfer charged.
    pub hit: bool,
    /// The transfer ran the full-reconfiguration chain (blacklisting).
    pub forced_full: bool,
    /// This segment resumes a previously checkpointed job.
    pub resumed: bool,
    /// This segment ends in a checkpoint.
    pub preempted: bool,
    /// An unrecoverable fault killed the job in this segment.
    pub dropped: bool,
    /// No recovery excess anywhere in the segment.
    pub clean: bool,
}

impl PreemptSegment {
    /// Instant the segment's last window closes.
    pub fn end(&self) -> SimTime {
        let mut end = self.exec_end.max(self.control_end);
        if let Some((_, e)) = self.config {
            end = end.max(e);
        }
        if let Some((_, e)) = self.restore {
            end = end.max(e);
        }
        if let Some((_, e)) = self.save {
            end = end.max(e);
        }
        end.max(self.decision_end)
    }
}

/// Everything that determines a segment's rendered output up to a time
/// translation: its window layout relative to its own decision start,
/// the gap to the previous segment's decision start, the previous
/// segment's exec end relative to this decision start (the marginal
/// latency sample reads it), and its shape flags. Timing is given, so
/// no further carry-over state is needed — a gap match *is* the
/// adjacency proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SegKey {
    name: Symbol,
    slot: usize,
    gap_ns: u64,
    prev_exec_rel: i64,
    dec_ns: u64,
    config: Option<(u64, u64, u64)>,
    restore: Option<(u64, u64, u64)>,
    control: (u64, u64),
    exec: (u64, u64),
    save: Option<(u64, u64)>,
    flags: u8,
}

fn seg_key(seg: &PreemptSegment, prev_start: SimTime, prev_exec_end: SimTime) -> SegKey {
    let base = seg.decision_start.0;
    let rel = |t: SimTime| t.0 - base;
    let win = |(s, e): (SimTime, SimTime)| (rel(s), e.0 - s.0);
    SegKey {
        name: seg.name,
        slot: seg.slot,
        gap_ns: base - prev_start.0,
        prev_exec_rel: base as i64 - prev_exec_end.0 as i64,
        dec_ns: seg.decision_end.0 - base,
        config: seg.config.map(|w| {
            let (s, l) = win(w);
            (s, l, seg.config_clean.0)
        }),
        restore: seg.restore.map(|w| {
            let (s, l) = win(w);
            (s, l, seg.restore_clean.0)
        }),
        control: (
            rel(seg.control_start),
            seg.control_end.0 - seg.control_start.0,
        ),
        exec: (rel(seg.exec_start), seg.exec_end.0 - seg.exec_start.0),
        save: seg.save.map(win),
        flags: (seg.hit as u8)
            | (seg.forced_full as u8) << 1
            | (seg.resumed as u8) << 2
            | (seg.preempted as u8) << 3
            | (seg.dropped as u8) << 4
            | (seg.clean as u8) << 5,
    }
}

/// Marginal latency sample: completion-to-completion, clamped at zero
/// because execution windows on different PRRs may overlap (a later
/// dispatch can finish before an earlier long-running one). Used
/// identically by the per-segment path and the jump replication, and
/// shift-invariant within a verified period.
fn latency_s(exec_end: SimTime, prev_end: SimTime) -> f64 {
    (exec_end.max(prev_end) - prev_end).as_secs_f64()
}

/// Renders a preemptive schedule with the steady-state fast path
/// enabled. See the [module docs](self) for the event and journal
/// vocabulary; totals, timings, metrics, and journal bytes are
/// bit-identical to [`run_preemptive_reference`].
pub fn run_preemptive(
    node: &NodeConfig,
    segments: &[PreemptSegment],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_preemptive_impl(node, segments, ctx, true)
}

/// The pure per-segment renderer: the equivalence oracle for
/// [`run_preemptive`].
pub fn run_preemptive_reference(
    node: &NodeConfig,
    segments: &[PreemptSegment],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_preemptive_impl(node, segments, ctx, false)
}

fn run_preemptive_impl(
    node: &NodeConfig,
    segments: &[PreemptSegment],
    ctx: &ExecCtx,
    enable_jump: bool,
) -> Result<ExecutionReport, SimError> {
    let registry = &ctx.registry;
    if segments.is_empty() {
        return Err(SimError::InvalidRun("empty segment sequence".into()));
    }
    if let Some(bad) = segments.iter().find(|s| s.slot >= node.n_prrs) {
        return Err(SimError::InvalidRun(format!(
            "slot {} out of range for {} PRRs",
            bad.slot, node.n_prrs
        )));
    }

    // Whole-run memo (see `crate::delta`): the rendered report is a
    // pure function of (node, segments).
    let memo_key =
        (enable_jump && ctx.delta.is_enabled()).then(|| crate::delta::preempt_key(node, segments));
    let replayable = memo_key.is_some() && crate::delta::replay_allowed(ctx);
    if replayable {
        if let Some(r) = crate::delta::fetch(&ctx.delta, memo_key.as_deref().unwrap()) {
            ctx.delta.note_full_hit(segments.len() as u64);
            return Ok((*r).clone());
        }
    }

    let _span = registry.span("sim.run_preemptive");
    let j = &ctx.journal;
    let tid_host = Lane::Host.chrome_tid();
    let tid_cfg = Lane::ConfigPort.chrome_tid();
    let jrun = j.enter("sim.run_preemptive", 0, tid_host);
    let m_segments = registry.counter("sim.preempt.segments");
    let m_hits = registry.counter("sim.preempt.hits");
    let m_misses = registry.counter("sim.preempt.misses");
    let m_configs = registry.counter("sim.preempt.configs");
    let m_saves = registry.counter("sim.preempt.saves");
    let m_restores = registry.counter("sim.preempt.restores");
    let m_drops = registry.counter("sim.preempt.drops");
    let m_forced = registry.counter("sim.preempt.forced_full");
    let m_latency = registry.histogram("sim.preempt.segment_latency_s");

    // One stable anchor span per task: the host-side context buffer the
    // checkpoint flows dock at. Opened before any segment (outside any
    // jump window), so their ids survive cycle replay untouched.
    let mut anchors: HashMap<Symbol, Option<hprc_obs::SpanId>> = HashMap::new();
    let mut anchor_order: Vec<Symbol> = Vec::new();
    let mut label_buf = String::new();
    for seg in segments {
        if let std::collections::hash_map::Entry::Vacant(slot) = anchors.entry(seg.name) {
            label_buf.clear();
            label_buf.push_str("ctx:");
            label_buf.push_str(seg.name.as_str());
            slot.insert(j.open(&label_buf, jrun, 0, tid_host));
            anchor_order.push(seg.name);
        }
    }

    // Salted keys confine jumps to clean segments, mirroring the faulty
    // executors: a non-clean segment gets a unique salt so no period
    // containing it ever matches.
    let keys: Vec<(SegKey, u64)> = if enable_jump {
        segments
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (prev_start, prev_exec_end) = if i == 0 {
                    (SimTime::ZERO, SimTime::ZERO)
                } else {
                    (segments[i - 1].decision_start, segments[i - 1].exec_end)
                };
                let salt = if s.clean { 0 } else { i as u64 + 1 };
                (seg_key(s, prev_start, prev_exec_end), salt)
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut seen: HashMap<(SegKey, u64), SeenAt> = HashMap::new();

    let mut timeline = Timeline::default();
    let mut labels = LabelCache::default();
    let mut timings: Vec<CallTiming> = Vec::with_capacity(segments.len());
    let mut n_config = 0u64;
    let mut n_dropped = 0u64;

    let mut i = 0usize;
    while i < segments.len() {
        if enable_jump && i >= 1 {
            if let Some(at) = seen.get(&keys[i]).copied() {
                let p = i - at.i0;
                let m = verified_periods(&keys, at.i0, p, i);
                if m >= 1 {
                    let delta = segments[i].decision_start.0 - at.anchor.0;
                    let pattern = timeline.split_off_events(at.items_marker);
                    timeline.push_repeat(pattern, m + 1, SimDuration(delta));
                    let latencies: Vec<f64> = (at.timings_marker..timings.len())
                        .map(|t| latency_s(timings[t].exec_end, timings[t - 1].exec_end))
                        .collect();
                    let block = timings[at.timings_marker..].to_vec();
                    let bseg = &segments[at.i0..i];
                    let b_hits = bseg.iter().filter(|s| s.hit).count() as u64;
                    let b_cfgs = bseg.iter().filter(|s| s.config.is_some()).count() as u64;
                    let b_cfg_ok = bseg
                        .iter()
                        .filter(|s| s.config.is_some() && !s.dropped)
                        .count() as u64;
                    let b_saves = bseg.iter().filter(|s| s.save.is_some()).count() as u64;
                    let b_restores = bseg.iter().filter(|s| s.restore.is_some()).count() as u64;
                    let b_drops = bseg.iter().filter(|s| s.dropped).count() as u64;
                    let b_forced = bseg.iter().filter(|s| s.forced_full).count() as u64;
                    for k in 1..=m {
                        timings.extend(block.iter().map(|t| t.shifted(k * delta)));
                    }
                    m_segments.add(m * p as u64);
                    m_hits.add(m * b_hits);
                    m_misses.add(m * (p as u64 - b_hits));
                    m_configs.add(m * b_cfgs);
                    m_saves.add(m * b_saves);
                    m_restores.add(m * b_restores);
                    m_drops.add(m * b_drops);
                    m_forced.add(m * b_forced);
                    m_latency.record_cycle(&latencies, m);
                    n_config += m * b_cfg_ok;
                    n_dropped += m * b_drops;
                    j.replay_cycle(at.jmark, m, delta);
                    i += m as usize * p;
                    seen.clear();
                    continue;
                }
            }
            seen.insert(
                keys[i],
                SeenAt {
                    i0: i,
                    anchor: segments[i].decision_start,
                    items_marker: timeline.n_items(),
                    timings_marker: timings.len(),
                    jmark: j.mark(),
                },
            );
        }

        let seg = &segments[i];
        let jcall = j.open(seg.name.as_str(), jrun, seg.decision_start.0, tid_host);
        let jdec = j.event("decide", jcall, seg.decision_start.0, tid_host);
        timeline.push(
            Lane::Host,
            EventKind::Decision,
            labels.get(L_DEC, seg.name, 0),
            seg.decision_start,
            seg.decision_end,
        );

        let mut jcfg = None;
        if let Some((cs, ce)) = seg.config {
            jcfg = j.event("configure", jcall, cs.0, tid_cfg);
            j.flow(jdec, jcfg, "hide");
            let clean_end = (cs + seg.config_clean).min(ce);
            let kind = if seg.forced_full {
                EventKind::FullConfig
            } else {
                EventKind::PartialConfig
            };
            let tag = if seg.forced_full { L_FULL } else { L_CFG };
            timeline.push(
                Lane::ConfigPort,
                kind,
                labels.get(tag, seg.name, seg.slot),
                cs,
                clean_end,
            );
            timeline.push(
                Lane::ConfigPort,
                EventKind::Recovery,
                labels.get(L_RCV, seg.name, 0),
                clean_end,
                ce,
            );
            if !seg.dropped {
                n_config += 1;
            }
        }

        let mut jres = None;
        if let Some((rs, re)) = seg.restore {
            jres = j.event("restore", jcall, rs.0, tid_cfg);
            j.flow(anchors[&seg.name], jres, "restore");
            let clean_end = (rs + seg.restore_clean).min(re);
            timeline.push(
                Lane::ConfigPort,
                EventKind::Restore,
                labels.get(L_RES, seg.name, seg.slot),
                rs,
                clean_end,
            );
            timeline.push(
                Lane::ConfigPort,
                EventKind::Recovery,
                labels.get(L_RCV, seg.name, 0),
                clean_end,
                re,
            );
            m_restores.inc();
        }

        timeline.push(
            Lane::Host,
            EventKind::Control,
            labels.get(L_CTL, seg.name, 0),
            seg.control_start,
            seg.control_end,
        );
        timeline.push(
            Lane::Prr(seg.slot),
            EventKind::Exec,
            seg.name,
            seg.exec_start,
            seg.exec_end,
        );
        let jexec = if seg.dropped {
            None
        } else {
            let e = j.event(
                "execute",
                jcall,
                seg.exec_start.0,
                Lane::Prr(seg.slot).chrome_tid(),
            );
            if jres.is_some() {
                j.flow(jres, e, "activate");
            } else if jcfg.is_some() {
                j.flow(jcfg, e, "activate");
            } else {
                j.flow(jdec, e, "hit");
            }
            e
        };

        if let Some((ss, se)) = seg.save {
            let jsave = j.event("save", jcall, ss.0, tid_cfg);
            j.flow(jexec, jsave, "preempt");
            j.flow(jsave, anchors[&seg.name], "save");
            timeline.push(
                Lane::ConfigPort,
                EventKind::Preempt,
                labels.get(L_SAV, seg.name, seg.slot),
                ss,
                se,
            );
            m_saves.inc();
        }

        m_segments.inc();
        if seg.hit {
            m_hits.inc();
        } else {
            m_misses.inc();
        }
        if seg.config.is_some() {
            m_configs.inc();
        }
        if seg.dropped {
            m_drops.inc();
            n_dropped += 1;
        }
        if seg.forced_full {
            m_forced.inc();
        }
        let prev_end = timings.last().map_or(SimTime::ZERO, |t| t.exec_end);
        m_latency.record(latency_s(seg.exec_end, prev_end));
        timings.push(CallTiming {
            name: seg.name,
            hit: seg.hit,
            config_start: seg.config.map(|w| w.0),
            config_end: seg.config.map(|w| w.1),
            exec_start: seg.exec_start,
            exec_end: seg.exec_end,
        });
        j.close(jcall, seg.end().0);
        i += 1;
    }

    let end = timeline.span_end();
    for name in anchor_order {
        j.close(anchors[&name], end.0);
    }
    j.exit(jrun, end.0);
    timeline.record_metrics(registry, "sim.preempt");
    let report = ExecutionReport {
        total: end - SimTime::ZERO,
        calls: timings,
        timeline,
        n_config,
        n_dropped,
    };
    if let Some(key) = memo_key {
        crate::delta::store(&ctx.delta, key, &report);
        if replayable {
            ctx.delta.note_miss(segments.len() as u64);
        }
    }
    Ok(report)
}
