//! The ICAP configuration path: the control circuit of Figure 7.
//!
//! Partial bitstreams travel host → (HyperTransport link) → BRAM buffer →
//! state machine → ICAP. The ICAP port itself runs at 66 MB/s peak, but the
//! control FSM costs extra cycles per byte and per BRAM burst, which is why
//! the paper's *measured* partial configuration times (Table 2) are ~3.2×
//! the SelectMap-rate *estimates*.
//!
//! Calibration: 3 FSM cycles per byte (BRAM read, ICAP write, handshake)
//! plus 59 cycles per 256-byte burst (refill arbitration) gives an
//! effective 20.43 MB/s — reproducing Table 2's measured 19.77 ms (dual
//! PRR, 404,168 B) and 43.48 ms (single PRR, 887,784 B) to within 0.1 %.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::time::SimDuration;

/// The ICAP feeder: clock, FSM cost model, and BRAM buffering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcapPath {
    /// ICAP/controller clock in Hz (66 MHz on Virtex-II Pro).
    pub clock_hz: f64,
    /// FSM cycles consumed per payload byte.
    pub cycles_per_byte: u32,
    /// Extra FSM cycles per BRAM burst (refill arbitration).
    pub cycles_per_burst: u32,
    /// BRAM burst length in bytes.
    pub burst_bytes: u32,
    /// Total BRAM buffer in bytes (8 block RAMs on the XD1 controller).
    pub bram_buffer_bytes: u32,
    /// Host-link bandwidth available for filling the buffer, bytes/s.
    pub link_bytes_per_sec: f64,
}

impl IcapPath {
    /// The calibrated Cray XD1 controller (Figure 7 / Table 2).
    pub fn xd1() -> IcapPath {
        IcapPath {
            clock_hz: 66e6,
            cycles_per_byte: 3,
            cycles_per_burst: 59,
            burst_bytes: 256,
            bram_buffer_bytes: 8 * 2048,
            link_bytes_per_sec: 1.6e9,
        }
    }

    /// An idealized ICAP running at the raw port rate (1 cycle/byte, no
    /// burst cost) — produces the *estimated* times of Table 2.
    pub fn ideal() -> IcapPath {
        IcapPath {
            cycles_per_byte: 1,
            cycles_per_burst: 0,
            ..IcapPath::xd1()
        }
    }

    /// Effective throughput in bytes per second.
    pub fn effective_bytes_per_sec(&self) -> f64 {
        let cycles_per_byte =
            self.cycles_per_byte as f64 + self.cycles_per_burst as f64 / self.burst_bytes as f64;
        self.clock_hz / cycles_per_byte
    }

    /// Time to push `bytes` of partial bitstream through the ICAP path.
    ///
    /// The BRAM double-buffer lets the link refill one half while the FSM
    /// drains the other; with the link far faster than the drain, the total
    /// is the drain time plus the first half-buffer fill.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let first_fill =
            (self.bram_buffer_bytes as f64 / 2.0).min(bytes as f64) / self.link_bytes_per_sec;
        let bursts = (bytes as f64 / self.burst_bytes as f64).ceil();
        let cycles =
            bytes as f64 * self.cycles_per_byte as f64 + bursts * self.cycles_per_burst as f64;
        let drain = cycles / self.clock_hz;
        // A link slower than the drain rate would throttle the FSM instead.
        let link_bound = bytes as f64 / self.link_bytes_per_sec;
        first_fill + drain.max(link_bound)
    }

    /// [`IcapPath::transfer_time_s`] as a [`SimDuration`].
    pub fn transfer_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.transfer_time_s(bytes))
    }

    /// [`IcapPath::transfer_duration`] with the transfer recorded into
    /// `ctx.registry` (`sim.icap.transfers` / `sim.icap.bytes` counters
    /// and a `sim.icap.transfer_s` histogram).
    ///
    /// The PRTR executor batches its accounting instead (one bitstream
    /// size for the whole run); this entry point serves callers pushing
    /// variable-size partial bitstreams.
    pub fn transfer(&self, bytes: u64, ctx: &hprc_ctx::ExecCtx) -> SimDuration {
        let d = self.transfer_duration(bytes);
        ctx.registry.counter("sim.icap.transfers").inc();
        ctx.registry.counter("sim.icap.bytes").add(bytes);
        ctx.registry
            .histogram("sim.icap.transfer_s")
            .record(d.as_secs_f64());
        d
    }

    /// One fault-injectable transfer attempt: the injection hook the
    /// faulty PRTR executor drives. Counts `sim.icap.transfers` /
    /// `sim.icap.bytes` for every attempt (failed attempts consumed the
    /// port just the same) and returns the transfer duration on
    /// success. On an injected fault, bumps `sim.icap.faults` and
    /// returns [`SimError::TransientFault`] — the caller's recovery
    /// policy decides what happens next; the whole `transfer_duration`
    /// still elapsed (a CRC mismatch or timeout is detected at the end
    /// of the window).
    pub fn transfer_attempt(
        &self,
        bytes: u64,
        outcome: hprc_fault::AttemptOutcome,
        ctx: &hprc_ctx::ExecCtx,
    ) -> Result<SimDuration, SimError> {
        let d = self.transfer_duration(bytes);
        ctx.registry.counter("sim.icap.transfers").inc();
        ctx.registry.counter("sim.icap.bytes").add(bytes);
        match outcome {
            hprc_fault::AttemptOutcome::Success => Ok(d),
            hprc_fault::AttemptOutcome::Fault(site) => {
                ctx.registry.counter("sim.icap.faults").inc();
                Err(SimError::TransientFault(format!(
                    "icap transfer failed: {}",
                    site.name()
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_rate_is_about_20_mb_per_s() {
        let r = IcapPath::xd1().effective_bytes_per_sec();
        assert!((r / 1e6 - 20.43).abs() < 0.01, "rate = {} MB/s", r / 1e6);
    }

    #[test]
    fn table2_measured_dual_prr_time() {
        let t = IcapPath::xd1().transfer_time_s(404_168);
        assert!((t * 1e3 - 19.77).abs() < 0.1, "t = {} ms", t * 1e3);
    }

    #[test]
    fn table2_measured_single_prr_time() {
        let t = IcapPath::xd1().transfer_time_s(887_784);
        assert!((t * 1e3 - 43.48).abs() < 0.15, "t = {} ms", t * 1e3);
    }

    #[test]
    fn ideal_path_matches_selectmap_estimate() {
        // Table 2's estimated dual-PRR time: 6.12 ms at the raw 66 MB/s.
        let t = IcapPath::ideal().transfer_time_s(404_168);
        assert!((t * 1e3 - 6.12).abs() < 0.05, "t = {} ms", t * 1e3);
    }

    #[test]
    fn slow_link_throttles() {
        let slow = IcapPath {
            link_bytes_per_sec: 1e6, // 1 MB/s link << 20 MB/s drain
            ..IcapPath::xd1()
        };
        let t = slow.transfer_time_s(1_000_000);
        assert!(t >= 1.0, "t = {t}");
    }

    #[test]
    fn zero_bytes_take_zero_time() {
        assert_eq!(IcapPath::xd1().transfer_time_s(0), 0.0);
    }

    #[test]
    fn transfer_records_accounting() {
        let ctx = hprc_ctx::ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let p = IcapPath::xd1();
        let d1 = p.transfer(404_168, &ctx);
        let d2 = p.transfer_duration(404_168);
        assert_eq!(d1, d2, "instrumented path is timing-neutral");
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.icap.transfers"], 1);
        assert_eq!(snap.counters["sim.icap.bytes"], 404_168);
        assert_eq!(snap.histograms["sim.icap.transfer_s"].count, 1);
    }

    #[test]
    fn transfer_attempt_counts_faults_and_keeps_timing() {
        use hprc_fault::{AttemptOutcome, FaultSite};
        let ctx = hprc_ctx::ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let p = IcapPath::xd1();
        let ok = p.transfer_attempt(404_168, AttemptOutcome::Success, &ctx);
        assert_eq!(ok.unwrap(), p.transfer_duration(404_168));
        let err = p.transfer_attempt(404_168, AttemptOutcome::Fault(FaultSite::IcapTimeout), &ctx);
        assert!(matches!(err, Err(SimError::TransientFault(_))));
        let snap = ctx.registry.snapshot();
        // Both attempts consumed the port.
        assert_eq!(snap.counters["sim.icap.transfers"], 2);
        assert_eq!(snap.counters["sim.icap.bytes"], 2 * 404_168);
        assert_eq!(snap.counters["sim.icap.faults"], 1);
    }

    #[test]
    fn monotone_in_bytes() {
        let p = IcapPath::xd1();
        let mut prev = 0.0;
        for bytes in [1u64, 100, 10_000, 1_000_000] {
            let t = p.transfer_time_s(bytes);
            assert!(t > prev);
            prev = t;
        }
    }
}
