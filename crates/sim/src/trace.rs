//! Execution timelines: the data behind the paper's execution profiles
//! (Figures 3 and 4), plus a text Gantt renderer.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Which resource an event occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lane {
    /// Host CPU (decisions, API calls).
    Host,
    /// The configuration path (SelectMap or ICAP).
    ConfigPort,
    /// A PRR's compute fabric.
    Prr(usize),
    /// Host→FPGA data channel.
    LinkIn,
    /// FPGA→host data channel.
    LinkOut,
}

impl Lane {
    fn label(&self) -> String {
        match self {
            Lane::Host => "host".into(),
            Lane::ConfigPort => "config".into(),
            Lane::Prr(i) => format!("PRR{i}"),
            Lane::LinkIn => "link-in".into(),
            Lane::LinkOut => "link-out".into(),
        }
    }
}

/// What kind of activity an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Pre-fetch decision (`T_decision`).
    Decision,
    /// Full-device configuration (`T_FRTR`).
    FullConfig,
    /// Partial reconfiguration (`T_PRTR`).
    PartialConfig,
    /// Transfer of control (`T_control`).
    Control,
    /// Task execution (`T_task`).
    Exec,
    /// Input data transfer.
    DataIn,
    /// Output data transfer.
    DataOut,
}

impl EventKind {
    /// One-character glyph for the text Gantt.
    pub fn glyph(&self) -> char {
        match self {
            EventKind::Decision => 'd',
            EventKind::FullConfig => 'F',
            EventKind::PartialConfig => 'P',
            EventKind::Control => 'c',
            EventKind::Exec => 'X',
            EventKind::DataIn => 'i',
            EventKind::DataOut => 'o',
        }
    }
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Resource occupied.
    pub lane: Lane,
    /// Activity kind.
    pub kind: EventKind,
    /// Human label (task name, etc.).
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

/// An execution timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Events in creation order.
    pub events: Vec<TraceEvent>,
}

impl Timeline {
    /// Records an event (zero-length events are dropped).
    pub fn push(&mut self, lane: Lane, kind: EventKind, label: impl Into<String>, start: SimTime, end: SimTime) {
        if end > start {
            self.events.push(TraceEvent {
                lane,
                kind,
                label: label.into(),
                start,
                end,
            });
        }
    }

    /// End of the last event.
    pub fn span_end(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time on one lane, seconds.
    pub fn lane_busy_s(&self, lane: Lane) -> f64 {
        self.events
            .iter()
            .filter(|e| e.lane == lane)
            .map(|e| (e.end - e.start).as_secs_f64())
            .sum()
    }

    /// Renders an ASCII Gantt chart, `width` columns wide — the
    /// reproduction of the execution profiles of Figures 3 and 4.
    /// Each lane is one row; glyphs encode the activity
    /// (`F` full config, `P` partial config, `d` decision, `c` control,
    /// `X` execution, `i`/`o` data transfers).
    pub fn render_text(&self, width: usize) -> String {
        let width = width.max(10);
        let end = self.span_end().as_secs_f64();
        if end == 0.0 || self.events.is_empty() {
            return String::from("(empty timeline)\n");
        }
        let mut lanes: Vec<Lane> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort();
        lanes.dedup();
        let label_w = lanes
            .iter()
            .map(|l| l.label().len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        for lane in lanes {
            let mut row = vec!['.'; width];
            for e in self.events.iter().filter(|e| e.lane == lane) {
                let s = ((e.start.as_secs_f64() / end) * width as f64) as usize;
                let f = ((e.end.as_secs_f64() / end) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(f.min(width)).skip(s.min(width - 1)) {
                    *cell = e.kind.glyph();
                }
            }
            out.push_str(&format!("{:>label_w$} |", lane.label()));
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>label_w$} |{}\n",
            "",
            format_args!("0 {:.<pad$} {:.4}s", "", end, pad = width.saturating_sub(12))
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn push_drops_zero_length_events() {
        let mut tl = Timeline::default();
        tl.push(Lane::Host, EventKind::Decision, "d", t(1.0), t(1.0));
        assert!(tl.events.is_empty());
        tl.push(Lane::Host, EventKind::Decision, "d", t(1.0), t(2.0));
        assert_eq!(tl.events.len(), 1);
    }

    #[test]
    fn span_and_busy_accounting() {
        let mut tl = Timeline::default();
        tl.push(Lane::ConfigPort, EventKind::PartialConfig, "m", t(0.0), t(0.5));
        tl.push(Lane::Prr(0), EventKind::Exec, "m", t(0.5), t(2.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "m2", t(2.0), t(2.5));
        assert!((tl.span_end().as_secs_f64() - 2.5).abs() < 1e-9);
        assert!((tl.lane_busy_s(Lane::Prr(0)) - 2.0).abs() < 1e-9);
        assert!((tl.lane_busy_s(Lane::LinkIn) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_lanes_and_glyphs() {
        let mut tl = Timeline::default();
        tl.push(Lane::ConfigPort, EventKind::FullConfig, "full", t(0.0), t(1.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "task", t(1.0), t(2.0));
        let s = tl.render_text(60);
        assert!(s.contains("config"));
        assert!(s.contains("PRR0"));
        assert!(s.contains('F'));
        assert!(s.contains('X'));
    }

    #[test]
    fn render_empty_timeline() {
        assert!(Timeline::default().render_text(40).contains("empty"));
    }
}
