//! Execution timelines: the data behind the paper's execution profiles
//! (Figures 3 and 4), plus a text Gantt renderer.
//!
//! # Representation
//!
//! A [`Timeline`] is a run-length-encoded event sequence. Plain events
//! are stored as themselves; a periodic simulation (the steady state of
//! the FRTR/PRTR executors) stores one `(pattern, repeat_count,
//! stride)` block per detected period instead of `repeat_count`
//! materialized copies, so memory is O(distinct patterns) rather than
//! O(n_calls). Every consumer — [`Timeline::lane_busy_s`],
//! [`Timeline::class_intervals`], [`Timeline::render_text`], the
//! Chrome-trace export — reads through [`Timeline::iter`], a lazy
//! expansion that replays events in exactly the order a per-call
//! recording would have created them. Derived quantities (including
//! order-sensitive floating-point sums) are therefore bit-identical to
//! a flat timeline holding the same events.
//!
//! Labels are interned [`Symbol`]s, so events are `Copy` and repeating
//! a pattern never clones a `String`.

use hprc_ctx::Symbol;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Which resource an event occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lane {
    /// Host CPU (decisions, API calls).
    Host,
    /// The configuration path (SelectMap or ICAP).
    ConfigPort,
    /// A PRR's compute fabric.
    Prr(usize),
    /// Host→FPGA data channel.
    LinkIn,
    /// FPGA→host data channel.
    LinkOut,
}

impl Lane {
    /// Short human name, also used as the metric-key suffix in
    /// [`Timeline::record_metrics`].
    pub fn label(&self) -> String {
        match self {
            Lane::Host => "host".into(),
            Lane::ConfigPort => "config".into(),
            Lane::Prr(i) => format!("PRR{i}"),
            Lane::LinkIn => "link-in".into(),
            Lane::LinkOut => "link-out".into(),
        }
    }

    /// Thread id under which this lane's events appear in a Chrome
    /// trace. Fixed lanes take low ids; PRR lanes start at 10 so any
    /// number of regions sorts after them.
    pub fn chrome_tid(&self) -> u64 {
        match self {
            Lane::Host => 0,
            Lane::ConfigPort => 1,
            Lane::LinkIn => 2,
            Lane::LinkOut => 3,
            Lane::Prr(i) => 10 + *i as u64,
        }
    }
}

/// What kind of activity an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Pre-fetch decision (`T_decision`).
    Decision,
    /// Full-device configuration (`T_FRTR`).
    FullConfig,
    /// Partial reconfiguration (`T_PRTR`).
    PartialConfig,
    /// Transfer of control (`T_control`).
    Control,
    /// Task execution (`T_task`).
    Exec,
    /// Input data transfer.
    DataIn,
    /// Output data transfer.
    DataOut,
    /// Fault recovery on the configuration path: retry backoff and
    /// bitstream re-fetch after an injected fault (crate `hprc-fault`).
    /// Never appears in a fault-free run.
    Recovery,
    /// Context-save readback: a preempted task's live PRR state pulled
    /// back over the configuration port at a PR-safe point.
    Preempt,
    /// Context-restore write-back: a previously saved context pushed
    /// back into a PRR before the task resumes.
    Restore,
}

impl EventKind {
    /// One-character glyph for the text Gantt.
    pub fn glyph(&self) -> char {
        match self {
            EventKind::Decision => 'd',
            EventKind::FullConfig => 'F',
            EventKind::PartialConfig => 'P',
            EventKind::Control => 'c',
            EventKind::Exec => 'X',
            EventKind::DataIn => 'i',
            EventKind::DataOut => 'o',
            EventKind::Recovery => 'r',
            EventKind::Preempt => 's',
            EventKind::Restore => 'R',
        }
    }

    /// The coarse activity class this kind belongs to — the granularity
    /// at which wall-clock attribution (crate `hprc-attr`) partitions a
    /// run.
    pub fn class(&self) -> ActivityClass {
        match self {
            EventKind::Exec => ActivityClass::Exec,
            // Recovery time is visible configuration-path stall, so it
            // lands in the Config bucket and the attribution identity
            // (exclusive buckets summing to the span) holds unchanged
            // on faulty runs. Context save/restore transfers ride the
            // same port and land in the same bucket, so the identity
            // also holds on preemptive schedules.
            EventKind::FullConfig
            | EventKind::PartialConfig
            | EventKind::Recovery
            | EventKind::Preempt
            | EventKind::Restore => ActivityClass::Config,
            EventKind::Decision => ActivityClass::Decision,
            EventKind::Control => ActivityClass::Control,
            EventKind::DataIn | EventKind::DataOut => ActivityClass::Data,
        }
    }
}

/// Coarse activity classes for wall-clock attribution: the model's cost
/// terms (`T_task`, `T_config`, `T_decision`, `T_control`) plus the data
/// transfers that stream inside execution windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityClass {
    /// Task execution on a PRR (`T_task`).
    Exec,
    /// Configuration-port activity, full or partial (`T_FRTR`/`T_PRTR`).
    Config,
    /// Pre-fetch decision (`T_decision`).
    Decision,
    /// Transfer of control (`T_control`).
    Control,
    /// Host↔FPGA data streaming (overlaps execution by construction).
    Data,
}

/// One timeline event. `Copy`: the label is an interned [`Symbol`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Resource occupied.
    pub lane: Lane,
    /// Activity kind.
    pub kind: EventKind,
    /// Human label (task name, etc.), interned.
    pub label: Symbol,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl TraceEvent {
    /// The event shifted `offset` nanoseconds later.
    fn shifted(self, offset_ns: u64) -> TraceEvent {
        TraceEvent {
            start: SimTime(self.start.0 + offset_ns),
            end: SimTime(self.end.0 + offset_ns),
            ..self
        }
    }
}

/// One stored timeline item: a plain event, or a run-length-encoded
/// repetition block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Item {
    /// A single event.
    Event(TraceEvent),
    /// `pattern` expanded `count` times; repetition `k` (0-based) is
    /// the pattern shifted `k * stride` later. The pattern holds the
    /// absolute times of the first repetition.
    Repeat {
        pattern: Vec<TraceEvent>,
        count: u64,
        stride: SimDuration,
    },
}

/// Upper bound on the number of events [`Timeline::chrome_events`]
/// expands — the documented cap that keeps an RLE timeline from
/// materializing millions of trace rows. Representative traces in this
/// repository export tens to hundreds of events; the cap exists so a
/// steady-state run compressed to a handful of items can never blow up
/// the one consumer that must expand per-event.
pub const MAX_CHROME_EVENTS: usize = 100_000;

/// An execution timeline (run-length encoded; see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Stored items in creation order.
    items: Vec<Item>,
    /// Expanded event count (cached; `items` is the compressed form).
    n_events: u64,
}

impl Timeline {
    /// Records an event (zero-length events are dropped).
    pub fn push(
        &mut self,
        lane: Lane,
        kind: EventKind,
        label: impl Into<Symbol>,
        start: SimTime,
        end: SimTime,
    ) {
        if end > start {
            self.items.push(Item::Event(TraceEvent {
                lane,
                kind,
                label: label.into(),
                start,
                end,
            }));
            self.n_events += 1;
        }
    }

    /// Records a run-length-encoded block: `pattern` repeated `count`
    /// times, repetition `k` shifted `k * stride` later than the
    /// pattern's own (absolute) times. Zero-length pattern events are
    /// dropped; an empty pattern or zero count records nothing.
    ///
    /// [`Timeline::iter`] yields the repetitions in order, so a block
    /// is observationally identical to pushing the shifted copies one
    /// by one.
    pub fn push_repeat(&mut self, pattern: Vec<TraceEvent>, count: u64, stride: SimDuration) {
        let pattern: Vec<TraceEvent> = pattern.into_iter().filter(|e| e.end > e.start).collect();
        if pattern.is_empty() || count == 0 {
            return;
        }
        self.n_events += pattern.len() as u64 * count;
        if count == 1 {
            // No repetition to encode; store plain events.
            self.items.extend(pattern.into_iter().map(Item::Event));
            return;
        }
        self.items.push(Item::Repeat {
            pattern,
            count,
            stride,
        });
    }

    /// Number of stored items (compressed size). A steady-state run
    /// keeps this O(distinct patterns) while [`Timeline::len`] counts
    /// the expanded events.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Number of (expanded) events.
    pub fn len(&self) -> u64 {
        self.n_events
    }

    /// True when the timeline holds no events.
    pub fn is_empty(&self) -> bool {
        self.n_events == 0
    }

    /// Removes and returns the plain events stored at item index
    /// `from` and later — the hook the steady-state executors use to
    /// convert the just-recorded period into a [`Timeline::push_repeat`]
    /// block.
    ///
    /// # Panics
    ///
    /// Panics when the tail contains a repeat block (callers split at
    /// checkpoints they took themselves, which are always plain-event
    /// boundaries).
    pub fn split_off_events(&mut self, from: usize) -> Vec<TraceEvent> {
        let tail: Vec<TraceEvent> = self
            .items
            .drain(from..)
            .map(|item| match item {
                Item::Event(e) => e,
                Item::Repeat { .. } => panic!("split_off_events across a repeat block"),
            })
            .collect();
        self.n_events -= tail.len() as u64;
        tail
    }

    /// Lazily expands the timeline into absolute-time events, in
    /// creation order (repeat blocks yield their repetitions in
    /// sequence). All derived quantities read through this iterator,
    /// which is what keeps them bit-identical to a flat recording.
    pub fn iter(&self) -> TimelineIter<'_> {
        TimelineIter {
            items: &self.items,
            item: 0,
            rep: 0,
            idx: 0,
        }
    }

    /// End of the last event (computed on the compressed form).
    pub fn span_end(&self) -> SimTime {
        self.items
            .iter()
            .map(|item| match item {
                Item::Event(e) => e.end,
                Item::Repeat {
                    pattern,
                    count,
                    stride,
                } => {
                    let last = pattern
                        .iter()
                        .map(|e| e.end)
                        .max()
                        .expect("repeat patterns are non-empty");
                    SimTime(last.0 + (count - 1) * stride.0)
                }
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time on one lane, seconds.
    pub fn lane_busy_s(&self, lane: Lane) -> f64 {
        self.iter()
            .filter(|e| e.lane == lane)
            .map(|e| (e.end - e.start).as_secs_f64())
            .sum()
    }

    /// The merged union of every interval during which an event of the
    /// given [`ActivityClass`] is active: sorted, pairwise-disjoint,
    /// non-adjacent `(start, end)` windows. This is the extraction hook
    /// wall-clock attribution (`hprc-attr`) builds its exclusive time
    /// buckets from — overlapping events of the same class (e.g. two
    /// PRRs executing concurrently) collapse into one window, so union
    /// lengths never double-count.
    pub fn class_intervals(&self, class: ActivityClass) -> Vec<(SimTime, SimTime)> {
        let mut iv: Vec<(SimTime, SimTime)> = self
            .iter()
            .filter(|e| e.kind.class() == class)
            .map(|e| (e.start, e.end))
            .collect();
        iv.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(iv.len());
        for (start, end) in iv {
            match merged.last_mut() {
                // Adjacent windows (end == next start) merge too: the
                // class is active continuously across the boundary.
                Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
                _ => merged.push((start, end)),
            }
        }
        merged
    }

    /// Total busy seconds of one activity class, counted on the merged
    /// union (concurrent same-class events are not double-counted).
    pub fn class_busy_s(&self, class: ActivityClass) -> f64 {
        self.class_intervals(class)
            .iter()
            .map(|(s, e)| (*e - *s).as_secs_f64())
            .sum()
    }

    /// Converts the timeline to Chrome trace-event format, one `tid`
    /// row per lane (see [`Lane::chrome_tid`]), all under `pid`.
    ///
    /// Timestamps are floored from nanoseconds to microseconds and
    /// durations computed as `floor(end) - floor(start)`, so events
    /// that do not overlap in simulation time never overlap in the
    /// exported trace and `ts + dur` never exceeds the floored
    /// simulation end time.
    ///
    /// This is the one consumer that must materialize per-event rows,
    /// so expansion is capped at [`MAX_CHROME_EVENTS`]: a longer
    /// timeline exports its first `MAX_CHROME_EVENTS` events followed by
    /// a synthetic zero-duration `[truncated N events]` marker at the
    /// timeline's end, so a capped trace is detectable in the viewer.
    pub fn chrome_events(&self, pid: u64) -> Vec<hprc_obs::ChromeEvent> {
        self.chrome_events_recorded(pid, &hprc_obs::Registry::noop())
    }

    /// [`Timeline::chrome_events`] that additionally records truncation
    /// to `registry` when the cap bites: bumps the
    /// `sim.trace.chrome_truncations` warning counter and adds the
    /// number of dropped events to `sim.trace.chrome_truncated_events`
    /// and to the cross-subsystem `obs.trace.truncated_events` counter
    /// (the one the artifact writers surface in `<id>.metrics.json`,
    /// shared with the fleet orchestrator's cluster-trace cap).
    pub fn chrome_events_recorded(
        &self,
        pid: u64,
        registry: &hprc_obs::Registry,
    ) -> Vec<hprc_obs::ChromeEvent> {
        let mut out: Vec<hprc_obs::ChromeEvent> = self
            .iter()
            .take(MAX_CHROME_EVENTS)
            .map(|e| {
                let ts = e.start.0 / 1_000;
                let dur = e.end.0 / 1_000 - ts;
                hprc_obs::ChromeEvent::complete(
                    e.label.as_str().to_string(),
                    ts,
                    dur,
                    pid,
                    e.lane.chrome_tid(),
                )
            })
            .collect();
        let truncated = self.n_events.saturating_sub(MAX_CHROME_EVENTS as u64);
        if truncated > 0 {
            out.push(hprc_obs::ChromeEvent::complete(
                format!("[truncated {truncated} events]"),
                self.span_end().0 / 1_000,
                0,
                pid,
                Lane::Host.chrome_tid(),
            ));
            registry.counter("sim.trace.chrome_truncations").inc();
            registry
                .counter("sim.trace.chrome_truncated_events")
                .add(truncated);
            registry
                .counter("obs.trace.truncated_events")
                .add(truncated);
        }
        out
    }

    /// Records per-lane busy time and configuration-port utilization
    /// as gauges under `prefix`:
    ///
    /// * `{prefix}.lane_busy_s.{lane}` — busy seconds per lane;
    /// * `{prefix}.makespan_s` — end of the last event;
    /// * `{prefix}.config_port.utilization` — config-port busy time
    ///   over the makespan.
    pub fn record_metrics(&self, registry: &hprc_obs::Registry, prefix: &str) {
        if !registry.is_enabled() {
            return;
        }
        // Per-lane sums accumulate in expanded event order, which keeps
        // every gauge bit-identical to a flat recording — but a repeat
        // block contributes the same duration sequence every repetition
        // (the stride shifts start and end alike), so the sums run over
        // the compressed items with a tight add loop instead of
        // materializing each event.
        fn slot(lanes: &mut Vec<Lane>, busy: &mut Vec<f64>, lane: Lane) -> usize {
            lanes.iter().position(|&l| l == lane).unwrap_or_else(|| {
                lanes.push(lane);
                busy.push(0.0);
                lanes.len() - 1
            })
        }
        let mut lanes: Vec<Lane> = Vec::new();
        let mut busy: Vec<f64> = Vec::new();
        for item in &self.items {
            match item {
                Item::Event(e) => {
                    let i = slot(&mut lanes, &mut busy, e.lane);
                    busy[i] += (e.end - e.start).as_secs_f64();
                }
                Item::Repeat { pattern, count, .. } => {
                    let durs: Vec<(usize, f64)> = pattern
                        .iter()
                        .map(|e| {
                            let i = slot(&mut lanes, &mut busy, e.lane);
                            (i, (e.end - e.start).as_secs_f64())
                        })
                        .collect();
                    for _ in 0..*count {
                        for &(i, d) in &durs {
                            busy[i] += d;
                        }
                    }
                }
            }
        }
        let mut by_lane: Vec<(Lane, f64)> = lanes.into_iter().zip(busy).collect();
        by_lane.sort_by_key(|&(lane, _)| lane);
        for &(lane, lane_busy) in &by_lane {
            registry
                .gauge(&format!("{prefix}.lane_busy_s.{}", lane.label()))
                .set(lane_busy);
        }
        let makespan = self.span_end().as_secs_f64();
        registry
            .gauge(&format!("{prefix}.makespan_s"))
            .set(makespan);
        if makespan > 0.0 {
            let config = by_lane
                .iter()
                .find(|&&(lane, _)| lane == Lane::ConfigPort)
                .map_or(0.0, |&(_, b)| b);
            registry
                .gauge(&format!("{prefix}.config_port.utilization"))
                .set(config / makespan);
        }
    }

    /// Renders an ASCII Gantt chart, `width` columns wide — the
    /// reproduction of the execution profiles of Figures 3 and 4.
    /// Each lane is one row; glyphs encode the activity
    /// (`F` full config, `P` partial config, `d` decision, `c` control,
    /// `X` execution, `i`/`o` data transfers).
    pub fn render_text(&self, width: usize) -> String {
        let width = width.max(10);
        let end = self.span_end().as_secs_f64();
        if end == 0.0 || self.is_empty() {
            return String::from("(empty timeline)\n");
        }
        let mut lanes: Vec<Lane> = self.iter().map(|e| e.lane).collect();
        lanes.sort();
        lanes.dedup();
        let label_w = lanes
            .iter()
            .map(|l| l.label().len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        for lane in lanes {
            let mut row = vec!['.'; width];
            for e in self.iter().filter(|e| e.lane == lane) {
                let s = ((e.start.as_secs_f64() / end) * width as f64) as usize;
                let f = ((e.end.as_secs_f64() / end) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(f.min(width)).skip(s.min(width - 1)) {
                    *cell = e.kind.glyph();
                }
            }
            out.push_str(&format!("{:>label_w$} |", lane.label()));
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>label_w$} |{}\n",
            "",
            format_args!(
                "0 {:.<pad$} {:.4}s",
                "",
                end,
                pad = width.saturating_sub(12)
            )
        ));
        out
    }
}

/// Lazy expansion of a [`Timeline`] (see [`Timeline::iter`]).
#[derive(Debug, Clone)]
pub struct TimelineIter<'a> {
    items: &'a [Item],
    item: usize,
    rep: u64,
    idx: usize,
}

impl Iterator for TimelineIter<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            let item = self.items.get(self.item)?;
            match item {
                Item::Event(e) => {
                    self.item += 1;
                    return Some(*e);
                }
                Item::Repeat {
                    pattern,
                    count,
                    stride,
                } => {
                    if self.idx >= pattern.len() {
                        self.idx = 0;
                        self.rep += 1;
                    }
                    if self.rep >= *count {
                        self.item += 1;
                        self.rep = 0;
                        self.idx = 0;
                        continue;
                    }
                    let e = pattern[self.idx];
                    self.idx += 1;
                    return Some(e.shifted(self.rep * stride.0));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn push_drops_zero_length_events() {
        let mut tl = Timeline::default();
        tl.push(Lane::Host, EventKind::Decision, "d", t(1.0), t(1.0));
        assert!(tl.is_empty());
        tl.push(Lane::Host, EventKind::Decision, "d", t(1.0), t(2.0));
        assert_eq!(tl.len(), 1);
    }

    #[test]
    fn span_and_busy_accounting() {
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "m",
            t(0.0),
            t(0.5),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "m", t(0.5), t(2.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "m2", t(2.0), t(2.5));
        assert!((tl.span_end().as_secs_f64() - 2.5).abs() < 1e-9);
        assert!((tl.lane_busy_s(Lane::Prr(0)) - 2.0).abs() < 1e-9);
        assert!((tl.lane_busy_s(Lane::LinkIn) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_lanes_and_glyphs() {
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::FullConfig,
            "full",
            t(0.0),
            t(1.0),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "task", t(1.0), t(2.0));
        let s = tl.render_text(60);
        assert!(s.contains("config"));
        assert!(s.contains("PRR0"));
        assert!(s.contains('F'));
        assert!(s.contains('X'));
    }

    #[test]
    fn render_empty_timeline() {
        assert!(Timeline::default().render_text(40).contains("empty"));
    }

    /// A hand-built four-lane timeline, with the rendered Gantt pinned
    /// byte-for-byte and every lane-busy total checked against the sum
    /// of its event durations.
    #[test]
    fn render_text_golden() {
        let mut tl = Timeline::default();
        tl.push(Lane::Host, EventKind::Decision, "dec", t(0.0), t(0.5));
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "cfg",
            t(0.0),
            t(1.0),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(1.0), t(3.0));
        tl.push(Lane::Host, EventKind::Control, "ctl", t(3.0), t(3.25));
        tl.push(Lane::Prr(1), EventKind::Exec, "b", t(3.25), t(4.0));

        let expected = [
            "  host |ddddd.........................ccc.......",
            "config |PPPPPPPPPP..............................",
            "  PRR0 |..........XXXXXXXXXXXXXXXXXXXX..........",
            "  PRR1 |................................XXXXXXXX",
            "       |0 ............................ 4.0000s",
            "",
        ]
        .join("\n");
        assert_eq!(tl.render_text(40), expected);

        // Lane-busy totals match the per-lane sums of event durations.
        assert!((tl.lane_busy_s(Lane::Host) - 0.75).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::ConfigPort) - 1.0).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::Prr(0)) - 2.0).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::Prr(1)) - 0.75).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::LinkIn) - 0.0).abs() < 1e-12);
        let lane_sum: f64 = [
            Lane::Host,
            Lane::ConfigPort,
            Lane::Prr(0),
            Lane::Prr(1),
            Lane::LinkIn,
            Lane::LinkOut,
        ]
        .iter()
        .map(|l| tl.lane_busy_s(*l))
        .sum();
        let event_sum: f64 = tl.iter().map(|e| (e.end - e.start).as_secs_f64()).sum();
        assert!((lane_sum - event_sum).abs() < 1e-12);
        assert!((tl.span_end().as_secs_f64() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn class_intervals_merge_overlap_and_adjacency() {
        let mut tl = Timeline::default();
        // Two PRRs executing with overlap, then an adjacent window.
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(0.0), t(2.0));
        tl.push(Lane::Prr(1), EventKind::Exec, "b", t(1.0), t(3.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "c", t(3.0), t(4.0));
        tl.push(Lane::Prr(1), EventKind::Exec, "d", t(6.0), t(7.0));
        let exec = tl.class_intervals(ActivityClass::Exec);
        assert_eq!(exec, vec![(t(0.0), t(4.0)), (t(6.0), t(7.0))]);
        // Union length, not the 2+2+1+1 = 6 s sum of durations.
        assert!((tl.class_busy_s(ActivityClass::Exec) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn class_groups_full_and_partial_config() {
        let mut tl = Timeline::default();
        tl.push(Lane::ConfigPort, EventKind::FullConfig, "f", t(0.0), t(1.0));
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "p",
            t(2.0),
            t(3.0),
        );
        tl.push(Lane::Host, EventKind::Decision, "d", t(0.0), t(0.5));
        let cfg = tl.class_intervals(ActivityClass::Config);
        assert_eq!(cfg.len(), 2);
        assert!((tl.class_busy_s(ActivityClass::Config) - 2.0).abs() < 1e-12);
        assert!(tl.class_intervals(ActivityClass::Data).is_empty());
        assert_eq!(
            EventKind::FullConfig.class(),
            EventKind::PartialConfig.class()
        );
        assert_eq!(EventKind::DataIn.class(), ActivityClass::Data);
    }

    #[test]
    fn chrome_events_floor_to_microseconds() {
        let mut tl = Timeline::default();
        // 1500 ns .. 3999 ns: floors to ts=1 µs, dur=(3 - 1)=2 µs.
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "m",
            SimTime(1_500),
            SimTime(3_999),
        );
        tl.push(
            Lane::Prr(1),
            EventKind::Exec,
            "m",
            SimTime(4_000),
            SimTime(9_000),
        );
        let evs = tl.chrome_events(7);
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].ts, evs[0].dur), (1, 2));
        assert_eq!((evs[0].pid, evs[0].tid), (7, 1));
        assert_eq!(evs[0].ph, "X");
        assert_eq!(evs[1].tid, 11); // PRR1
                                    // ts + dur never exceeds the floored simulation end.
        let end_us = tl.span_end().0 / 1_000;
        assert!(evs.iter().all(|e| e.ts + e.dur <= end_us));
    }

    #[test]
    fn record_metrics_exports_lane_busy_and_utilization() {
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "m",
            t(0.0),
            t(1.0),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "m", t(1.0), t(4.0));
        let reg = hprc_obs::Registry::new();
        tl.record_metrics(&reg, "sim");
        let snap = reg.snapshot();
        assert!((snap.gauges["sim.lane_busy_s.config"] - 1.0).abs() < 1e-9);
        assert!((snap.gauges["sim.lane_busy_s.PRR0"] - 3.0).abs() < 1e-9);
        assert!((snap.gauges["sim.makespan_s"] - 4.0).abs() < 1e-9);
        assert!((snap.gauges["sim.config_port.utilization"] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn record_metrics_noop_registry_is_free() {
        let mut tl = Timeline::default();
        tl.push(Lane::Host, EventKind::Control, "c", t(0.0), t(1.0));
        let reg = hprc_obs::Registry::noop();
        tl.record_metrics(&reg, "sim");
        assert!(reg.snapshot().gauges.is_empty());
    }

    /// Builds the same logical timeline twice — flat pushes vs one RLE
    /// repeat block — and checks every derived view agrees.
    fn periodic_pair() -> (Timeline, Timeline) {
        let period_s = 2.0;
        let mut flat = Timeline::default();
        for k in 0..4 {
            let base = k as f64 * period_s;
            flat.push(
                Lane::ConfigPort,
                EventKind::PartialConfig,
                "cfg",
                t(base),
                t(base + 0.5),
            );
            flat.push(
                Lane::Prr(k % 2),
                EventKind::Exec,
                "task",
                t(base + 0.5),
                t(base + 2.0),
            );
        }

        let mut rle = Timeline::default();
        // First period recorded plainly, then compressed in place —
        // the exact motion the steady-state executors perform.
        rle.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "cfg",
            t(0.0),
            t(0.5),
        );
        rle.push(Lane::Prr(0), EventKind::Exec, "task", t(0.5), t(2.0));
        rle.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "cfg",
            t(2.0),
            t(2.5),
        );
        rle.push(Lane::Prr(1), EventKind::Exec, "task", t(2.5), t(4.0));
        let pattern = rle.split_off_events(0);
        rle.push_repeat(pattern, 2, t(4.0) - SimTime::ZERO);
        (flat, rle)
    }

    #[test]
    fn rle_expansion_matches_flat_recording() {
        let (flat, rle) = periodic_pair();
        assert_eq!(rle.n_items(), 1, "compressed to one repeat block");
        assert_eq!(rle.len(), flat.len());
        let a: Vec<TraceEvent> = flat.iter().collect();
        let b: Vec<TraceEvent> = rle.iter().collect();
        assert_eq!(a, b, "expansion must replay creation order exactly");
        assert_eq!(rle.span_end(), flat.span_end());
        // Order-sensitive float sums are bit-identical, not just close.
        for lane in [Lane::ConfigPort, Lane::Prr(0), Lane::Prr(1)] {
            assert_eq!(
                rle.lane_busy_s(lane).to_bits(),
                flat.lane_busy_s(lane).to_bits()
            );
        }
        for class in [ActivityClass::Exec, ActivityClass::Config] {
            assert_eq!(rle.class_intervals(class), flat.class_intervals(class));
        }
    }

    /// The RLE golden: rendered Gantt and Chrome export pinned against
    /// the flat recording (and the Gantt against literal bytes).
    #[test]
    fn rle_render_and_chrome_golden() {
        let (flat, rle) = periodic_pair();
        let expected = [
            "config |PPP.......PPP.......PPP.......PPP.......",
            "  PRR0 |..XXXXXXXX............XXXXXXXX..........",
            "  PRR1 |............XXXXXXXX............XXXXXXXX",
            "       |0 ............................ 8.0000s",
            "",
        ]
        .join("\n");
        assert_eq!(rle.render_text(40), expected);
        assert_eq!(rle.render_text(40), flat.render_text(40));

        let a = flat.chrome_events(3);
        let b = rle.chrome_events(3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (&x.name, x.ts, x.dur, x.pid, x.tid),
                (&y.name, y.ts, y.dur, y.pid, y.tid)
            );
        }

        // Both sides export identical gauges too.
        let (ra, rb) = (hprc_obs::Registry::new(), hprc_obs::Registry::new());
        flat.record_metrics(&ra, "sim");
        rle.record_metrics(&rb, "sim");
        use serde::Serialize;
        assert_eq!(
            ra.snapshot().to_json_value()["gauges"].to_string(),
            rb.snapshot().to_json_value()["gauges"].to_string()
        );
    }

    #[test]
    fn chrome_export_respects_the_expansion_cap() {
        let mut tl = Timeline::default();
        tl.push(Lane::Prr(0), EventKind::Exec, "x", SimTime(0), SimTime(500));
        let pattern = tl.split_off_events(0);
        // Far more repetitions than the cap allows to materialize.
        tl.push_repeat(pattern, MAX_CHROME_EVENTS as u64 + 7, SimDuration(1_000));
        assert_eq!(tl.len(), MAX_CHROME_EVENTS as u64 + 7);
        assert_eq!(tl.n_items(), 1);
        let registry = hprc_obs::Registry::new();
        let evs = tl.chrome_events_recorded(1, &registry);
        // Cap + the synthetic truncation marker.
        assert_eq!(evs.len(), MAX_CHROME_EVENTS + 1);
        let marker = evs.last().unwrap();
        assert_eq!(marker.name, "[truncated 7 events]");
        assert_eq!(marker.dur, 0);
        assert_eq!(marker.ts, tl.span_end().0 / 1_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["sim.trace.chrome_truncations"], 1);
        assert_eq!(snap.counters["sim.trace.chrome_truncated_events"], 7);
        assert_eq!(snap.counters["obs.trace.truncated_events"], 7);
    }

    #[test]
    fn chrome_export_below_cap_has_no_marker() {
        let mut tl = Timeline::default();
        tl.push(Lane::Prr(0), EventKind::Exec, "x", SimTime(0), SimTime(500));
        let registry = hprc_obs::Registry::new();
        let evs = tl.chrome_events_recorded(1, &registry);
        assert_eq!(evs.len(), 1);
        let snap = registry.snapshot();
        assert!(!snap.counters.contains_key("sim.trace.chrome_truncations"));
        assert!(!snap.counters.contains_key("obs.trace.truncated_events"));
    }

    #[test]
    fn recovery_events_class_as_config() {
        assert_eq!(EventKind::Recovery.class(), ActivityClass::Config);
        assert_eq!(EventKind::Recovery.glyph(), 'r');
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::Recovery,
            "rcv",
            SimTime(0),
            SimTime(1_000),
        );
        assert!((tl.class_busy_s(ActivityClass::Config) - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn preempt_and_restore_events_class_as_config() {
        // Context save/restore ride the configuration port, so the attr
        // six-bucket identity keeps summing to the span on preemptive
        // schedules without a new bucket.
        assert_eq!(EventKind::Preempt.class(), ActivityClass::Config);
        assert_eq!(EventKind::Restore.class(), ActivityClass::Config);
        assert_eq!(EventKind::Preempt.glyph(), 's');
        assert_eq!(EventKind::Restore.glyph(), 'R');
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::Preempt,
            "sav",
            SimTime(0),
            SimTime(1_000),
        );
        tl.push(
            Lane::ConfigPort,
            EventKind::Restore,
            "res",
            SimTime(1_000),
            SimTime(2_500),
        );
        assert!((tl.class_busy_s(ActivityClass::Config) - 2.5e-6).abs() < 1e-15);
    }

    #[test]
    fn push_repeat_edge_cases() {
        let mut tl = Timeline::default();
        // Empty pattern / zero count / zero-length events record nothing.
        tl.push_repeat(Vec::new(), 5, SimDuration(10));
        let zero = TraceEvent {
            lane: Lane::Host,
            kind: EventKind::Control,
            label: Symbol::intern("z"),
            start: SimTime(4),
            end: SimTime(4),
        };
        tl.push_repeat(vec![zero], 5, SimDuration(10));
        tl.push_repeat(vec![zero], 0, SimDuration(10));
        assert!(tl.is_empty());
        assert_eq!(tl.n_items(), 0);

        // count == 1 stores plain events (nothing to encode).
        let e = TraceEvent {
            end: SimTime(9),
            ..zero
        };
        tl.push_repeat(vec![e], 1, SimDuration(10));
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.iter().next().unwrap(), e);
    }
}
