//! Execution timelines: the data behind the paper's execution profiles
//! (Figures 3 and 4), plus a text Gantt renderer.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Which resource an event occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lane {
    /// Host CPU (decisions, API calls).
    Host,
    /// The configuration path (SelectMap or ICAP).
    ConfigPort,
    /// A PRR's compute fabric.
    Prr(usize),
    /// Host→FPGA data channel.
    LinkIn,
    /// FPGA→host data channel.
    LinkOut,
}

impl Lane {
    /// Short human name, also used as the metric-key suffix in
    /// [`Timeline::record_metrics`].
    pub fn label(&self) -> String {
        match self {
            Lane::Host => "host".into(),
            Lane::ConfigPort => "config".into(),
            Lane::Prr(i) => format!("PRR{i}"),
            Lane::LinkIn => "link-in".into(),
            Lane::LinkOut => "link-out".into(),
        }
    }

    /// Thread id under which this lane's events appear in a Chrome
    /// trace. Fixed lanes take low ids; PRR lanes start at 10 so any
    /// number of regions sorts after them.
    pub fn chrome_tid(&self) -> u64 {
        match self {
            Lane::Host => 0,
            Lane::ConfigPort => 1,
            Lane::LinkIn => 2,
            Lane::LinkOut => 3,
            Lane::Prr(i) => 10 + *i as u64,
        }
    }
}

/// What kind of activity an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Pre-fetch decision (`T_decision`).
    Decision,
    /// Full-device configuration (`T_FRTR`).
    FullConfig,
    /// Partial reconfiguration (`T_PRTR`).
    PartialConfig,
    /// Transfer of control (`T_control`).
    Control,
    /// Task execution (`T_task`).
    Exec,
    /// Input data transfer.
    DataIn,
    /// Output data transfer.
    DataOut,
}

impl EventKind {
    /// One-character glyph for the text Gantt.
    pub fn glyph(&self) -> char {
        match self {
            EventKind::Decision => 'd',
            EventKind::FullConfig => 'F',
            EventKind::PartialConfig => 'P',
            EventKind::Control => 'c',
            EventKind::Exec => 'X',
            EventKind::DataIn => 'i',
            EventKind::DataOut => 'o',
        }
    }

    /// The coarse activity class this kind belongs to — the granularity
    /// at which wall-clock attribution (crate `hprc-attr`) partitions a
    /// run.
    pub fn class(&self) -> ActivityClass {
        match self {
            EventKind::Exec => ActivityClass::Exec,
            EventKind::FullConfig | EventKind::PartialConfig => ActivityClass::Config,
            EventKind::Decision => ActivityClass::Decision,
            EventKind::Control => ActivityClass::Control,
            EventKind::DataIn | EventKind::DataOut => ActivityClass::Data,
        }
    }
}

/// Coarse activity classes for wall-clock attribution: the model's cost
/// terms (`T_task`, `T_config`, `T_decision`, `T_control`) plus the data
/// transfers that stream inside execution windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityClass {
    /// Task execution on a PRR (`T_task`).
    Exec,
    /// Configuration-port activity, full or partial (`T_FRTR`/`T_PRTR`).
    Config,
    /// Pre-fetch decision (`T_decision`).
    Decision,
    /// Transfer of control (`T_control`).
    Control,
    /// Host↔FPGA data streaming (overlaps execution by construction).
    Data,
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Resource occupied.
    pub lane: Lane,
    /// Activity kind.
    pub kind: EventKind,
    /// Human label (task name, etc.).
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

/// An execution timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Events in creation order.
    pub events: Vec<TraceEvent>,
}

impl Timeline {
    /// Records an event (zero-length events are dropped).
    pub fn push(
        &mut self,
        lane: Lane,
        kind: EventKind,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        if end > start {
            self.events.push(TraceEvent {
                lane,
                kind,
                label: label.into(),
                start,
                end,
            });
        }
    }

    /// End of the last event.
    pub fn span_end(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time on one lane, seconds.
    pub fn lane_busy_s(&self, lane: Lane) -> f64 {
        self.events
            .iter()
            .filter(|e| e.lane == lane)
            .map(|e| (e.end - e.start).as_secs_f64())
            .sum()
    }

    /// The merged union of every interval during which an event of the
    /// given [`ActivityClass`] is active: sorted, pairwise-disjoint,
    /// non-adjacent `(start, end)` windows. This is the extraction hook
    /// wall-clock attribution (`hprc-attr`) builds its exclusive time
    /// buckets from — overlapping events of the same class (e.g. two
    /// PRRs executing concurrently) collapse into one window, so union
    /// lengths never double-count.
    pub fn class_intervals(&self, class: ActivityClass) -> Vec<(SimTime, SimTime)> {
        let mut iv: Vec<(SimTime, SimTime)> = self
            .events
            .iter()
            .filter(|e| e.kind.class() == class)
            .map(|e| (e.start, e.end))
            .collect();
        iv.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(iv.len());
        for (start, end) in iv {
            match merged.last_mut() {
                // Adjacent windows (end == next start) merge too: the
                // class is active continuously across the boundary.
                Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
                _ => merged.push((start, end)),
            }
        }
        merged
    }

    /// Total busy seconds of one activity class, counted on the merged
    /// union (concurrent same-class events are not double-counted).
    pub fn class_busy_s(&self, class: ActivityClass) -> f64 {
        self.class_intervals(class)
            .iter()
            .map(|(s, e)| (*e - *s).as_secs_f64())
            .sum()
    }

    /// Converts the timeline to Chrome trace-event format, one `tid`
    /// row per lane (see [`Lane::chrome_tid`]), all under `pid`.
    ///
    /// Timestamps are floored from nanoseconds to microseconds and
    /// durations computed as `floor(end) - floor(start)`, so events
    /// that do not overlap in simulation time never overlap in the
    /// exported trace and `ts + dur` never exceeds the floored
    /// simulation end time.
    pub fn chrome_events(&self, pid: u64) -> Vec<hprc_obs::ChromeEvent> {
        self.events
            .iter()
            .map(|e| {
                let ts = e.start.0 / 1_000;
                let dur = e.end.0 / 1_000 - ts;
                hprc_obs::ChromeEvent::complete(e.label.clone(), ts, dur, pid, e.lane.chrome_tid())
            })
            .collect()
    }

    /// Records per-lane busy time and configuration-port utilization
    /// as gauges under `prefix`:
    ///
    /// * `{prefix}.lane_busy_s.{lane}` — busy seconds per lane;
    /// * `{prefix}.makespan_s` — end of the last event;
    /// * `{prefix}.config_port.utilization` — config-port busy time
    ///   over the makespan.
    pub fn record_metrics(&self, registry: &hprc_obs::Registry, prefix: &str) {
        if !registry.is_enabled() {
            return;
        }
        let mut lanes: Vec<Lane> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort();
        lanes.dedup();
        for lane in &lanes {
            registry
                .gauge(&format!("{prefix}.lane_busy_s.{}", lane.label()))
                .set(self.lane_busy_s(*lane));
        }
        let makespan = self.span_end().as_secs_f64();
        registry
            .gauge(&format!("{prefix}.makespan_s"))
            .set(makespan);
        if makespan > 0.0 {
            registry
                .gauge(&format!("{prefix}.config_port.utilization"))
                .set(self.lane_busy_s(Lane::ConfigPort) / makespan);
        }
    }

    /// Renders an ASCII Gantt chart, `width` columns wide — the
    /// reproduction of the execution profiles of Figures 3 and 4.
    /// Each lane is one row; glyphs encode the activity
    /// (`F` full config, `P` partial config, `d` decision, `c` control,
    /// `X` execution, `i`/`o` data transfers).
    pub fn render_text(&self, width: usize) -> String {
        let width = width.max(10);
        let end = self.span_end().as_secs_f64();
        if end == 0.0 || self.events.is_empty() {
            return String::from("(empty timeline)\n");
        }
        let mut lanes: Vec<Lane> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort();
        lanes.dedup();
        let label_w = lanes
            .iter()
            .map(|l| l.label().len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        for lane in lanes {
            let mut row = vec!['.'; width];
            for e in self.events.iter().filter(|e| e.lane == lane) {
                let s = ((e.start.as_secs_f64() / end) * width as f64) as usize;
                let f = ((e.end.as_secs_f64() / end) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(f.min(width)).skip(s.min(width - 1)) {
                    *cell = e.kind.glyph();
                }
            }
            out.push_str(&format!("{:>label_w$} |", lane.label()));
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>label_w$} |{}\n",
            "",
            format_args!(
                "0 {:.<pad$} {:.4}s",
                "",
                end,
                pad = width.saturating_sub(12)
            )
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn push_drops_zero_length_events() {
        let mut tl = Timeline::default();
        tl.push(Lane::Host, EventKind::Decision, "d", t(1.0), t(1.0));
        assert!(tl.events.is_empty());
        tl.push(Lane::Host, EventKind::Decision, "d", t(1.0), t(2.0));
        assert_eq!(tl.events.len(), 1);
    }

    #[test]
    fn span_and_busy_accounting() {
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "m",
            t(0.0),
            t(0.5),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "m", t(0.5), t(2.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "m2", t(2.0), t(2.5));
        assert!((tl.span_end().as_secs_f64() - 2.5).abs() < 1e-9);
        assert!((tl.lane_busy_s(Lane::Prr(0)) - 2.0).abs() < 1e-9);
        assert!((tl.lane_busy_s(Lane::LinkIn) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_lanes_and_glyphs() {
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::FullConfig,
            "full",
            t(0.0),
            t(1.0),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "task", t(1.0), t(2.0));
        let s = tl.render_text(60);
        assert!(s.contains("config"));
        assert!(s.contains("PRR0"));
        assert!(s.contains('F'));
        assert!(s.contains('X'));
    }

    #[test]
    fn render_empty_timeline() {
        assert!(Timeline::default().render_text(40).contains("empty"));
    }

    /// A hand-built four-lane timeline, with the rendered Gantt pinned
    /// byte-for-byte and every lane-busy total checked against the sum
    /// of its event durations.
    #[test]
    fn render_text_golden() {
        let mut tl = Timeline::default();
        tl.push(Lane::Host, EventKind::Decision, "dec", t(0.0), t(0.5));
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "cfg",
            t(0.0),
            t(1.0),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(1.0), t(3.0));
        tl.push(Lane::Host, EventKind::Control, "ctl", t(3.0), t(3.25));
        tl.push(Lane::Prr(1), EventKind::Exec, "b", t(3.25), t(4.0));

        let expected = [
            "  host |ddddd.........................ccc.......",
            "config |PPPPPPPPPP..............................",
            "  PRR0 |..........XXXXXXXXXXXXXXXXXXXX..........",
            "  PRR1 |................................XXXXXXXX",
            "       |0 ............................ 4.0000s",
            "",
        ]
        .join("\n");
        assert_eq!(tl.render_text(40), expected);

        // Lane-busy totals match the per-lane sums of event durations.
        assert!((tl.lane_busy_s(Lane::Host) - 0.75).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::ConfigPort) - 1.0).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::Prr(0)) - 2.0).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::Prr(1)) - 0.75).abs() < 1e-12);
        assert!((tl.lane_busy_s(Lane::LinkIn) - 0.0).abs() < 1e-12);
        let lane_sum: f64 = [
            Lane::Host,
            Lane::ConfigPort,
            Lane::Prr(0),
            Lane::Prr(1),
            Lane::LinkIn,
            Lane::LinkOut,
        ]
        .iter()
        .map(|l| tl.lane_busy_s(*l))
        .sum();
        let event_sum: f64 = tl
            .events
            .iter()
            .map(|e| (e.end - e.start).as_secs_f64())
            .sum();
        assert!((lane_sum - event_sum).abs() < 1e-12);
        assert!((tl.span_end().as_secs_f64() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn class_intervals_merge_overlap_and_adjacency() {
        let mut tl = Timeline::default();
        // Two PRRs executing with overlap, then an adjacent window.
        tl.push(Lane::Prr(0), EventKind::Exec, "a", t(0.0), t(2.0));
        tl.push(Lane::Prr(1), EventKind::Exec, "b", t(1.0), t(3.0));
        tl.push(Lane::Prr(0), EventKind::Exec, "c", t(3.0), t(4.0));
        tl.push(Lane::Prr(1), EventKind::Exec, "d", t(6.0), t(7.0));
        let exec = tl.class_intervals(ActivityClass::Exec);
        assert_eq!(exec, vec![(t(0.0), t(4.0)), (t(6.0), t(7.0))]);
        // Union length, not the 2+2+1+1 = 6 s sum of durations.
        assert!((tl.class_busy_s(ActivityClass::Exec) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn class_groups_full_and_partial_config() {
        let mut tl = Timeline::default();
        tl.push(Lane::ConfigPort, EventKind::FullConfig, "f", t(0.0), t(1.0));
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "p",
            t(2.0),
            t(3.0),
        );
        tl.push(Lane::Host, EventKind::Decision, "d", t(0.0), t(0.5));
        let cfg = tl.class_intervals(ActivityClass::Config);
        assert_eq!(cfg.len(), 2);
        assert!((tl.class_busy_s(ActivityClass::Config) - 2.0).abs() < 1e-12);
        assert!(tl.class_intervals(ActivityClass::Data).is_empty());
        assert_eq!(
            EventKind::FullConfig.class(),
            EventKind::PartialConfig.class()
        );
        assert_eq!(EventKind::DataIn.class(), ActivityClass::Data);
    }

    #[test]
    fn chrome_events_floor_to_microseconds() {
        let mut tl = Timeline::default();
        // 1500 ns .. 3999 ns: floors to ts=1 µs, dur=(3 - 1)=2 µs.
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "m",
            SimTime(1_500),
            SimTime(3_999),
        );
        tl.push(
            Lane::Prr(1),
            EventKind::Exec,
            "m",
            SimTime(4_000),
            SimTime(9_000),
        );
        let evs = tl.chrome_events(7);
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].ts, evs[0].dur), (1, 2));
        assert_eq!((evs[0].pid, evs[0].tid), (7, 1));
        assert_eq!(evs[0].ph, "X");
        assert_eq!(evs[1].tid, 11); // PRR1
                                    // ts + dur never exceeds the floored simulation end.
        let end_us = tl.span_end().0 / 1_000;
        assert!(evs.iter().all(|e| e.ts + e.dur <= end_us));
    }

    #[test]
    fn record_metrics_exports_lane_busy_and_utilization() {
        let mut tl = Timeline::default();
        tl.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            "m",
            t(0.0),
            t(1.0),
        );
        tl.push(Lane::Prr(0), EventKind::Exec, "m", t(1.0), t(4.0));
        let reg = hprc_obs::Registry::new();
        tl.record_metrics(&reg, "sim");
        let snap = reg.snapshot();
        assert!((snap.gauges["sim.lane_busy_s.config"] - 1.0).abs() < 1e-9);
        assert!((snap.gauges["sim.lane_busy_s.PRR0"] - 3.0).abs() < 1e-9);
        assert!((snap.gauges["sim.makespan_s"] - 4.0).abs() < 1e-9);
        assert!((snap.gauges["sim.config_port.utilization"] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn record_metrics_noop_registry_is_free() {
        let mut tl = Timeline::default();
        tl.push(Lane::Host, EventKind::Control, "c", t(0.0), t(1.0));
        let reg = hprc_obs::Registry::noop();
        tl.record_metrics(&reg, "sim");
        assert!(reg.snapshot().gauges.is_empty());
    }
}
