//! A small, deterministic discrete-event engine.
//!
//! The FRTR/PRTR executors of [`crate::executor`] use closed recurrences
//! because single-application schedules are linear; multi-application
//! runtimes (hardware virtualization, `hprc-virt`) need a real event
//! queue. Events are ordered by `(time, priority, insertion sequence)`, so
//! simulations are reproducible bit for bit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A queued event: payload `E` at a time, with a tie-break priority
/// (lower value = served first at equal times).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<E> {
    time: SimTime,
    priority: u8,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.priority, self.seq).cmp(&(other.time, other.priority, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    // Default (no-op) counters unless built via `instrumented`.
    scheduled: hprc_obs::Counter,
    popped: hprc_obs::Counter,
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue pre-sized for `capacity` pending events, so a
    /// caller that knows its peak occupancy (e.g. one in-flight event
    /// per application) never regrows the heap mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
            scheduled: hprc_obs::Counter::default(),
            popped: hprc_obs::Counter::default(),
        }
    }

    /// An empty queue whose traffic is counted in `registry` as
    /// `sim.queue.scheduled` / `sim.queue.popped`.
    pub fn instrumented(registry: &hprc_obs::Registry) -> Self {
        Self::instrumented_with_capacity(registry, 0)
    }

    /// [`EventQueue::instrumented`] with a pre-sized heap (see
    /// [`EventQueue::with_capacity`]).
    pub fn instrumented_with_capacity(registry: &hprc_obs::Registry, capacity: usize) -> Self {
        EventQueue {
            scheduled: registry.counter("sim.queue.scheduled"),
            popped: registry.counter("sim.queue.popped"),
            ..Self::with_capacity(capacity)
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at `time` with default priority.
    ///
    /// # Panics
    ///
    /// Panics when scheduling into the past (before the last popped
    /// event's time) — a logic error in the caller.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        self.schedule_with_priority(time, 128, payload);
    }

    /// Schedules with an explicit tie-break priority (lower = first).
    pub fn schedule_with_priority(&mut self, time: SimTime, priority: u8, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.heap.push(Reverse(Entry {
            time,
            priority,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
        self.scheduled.inc();
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.time;
        self.popped.inc();
        Some((e.time, e.payload))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_ordered_by_priority_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule_with_priority(t(1.0), 200, "low1");
        q.schedule_with_priority(t(1.0), 10, "high");
        q.schedule_with_priority(t(1.0), 200, "low2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["high", "low1", "low2"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(t(5.0)));
        q.pop().unwrap();
        assert_eq!(q.now(), t(5.0));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), ());
        q.pop();
        q.schedule(t(1.0), ());
    }

    #[test]
    fn instrumented_queue_counts_traffic() {
        let reg = hprc_obs::Registry::new();
        let mut q = EventQueue::instrumented(&reg);
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.pop().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.queue.scheduled"], 2);
        assert_eq!(snap.counters["sim.queue.popped"], 1);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let reg = hprc_obs::Registry::new();
        let mut q = EventQueue::instrumented_with_capacity(&reg, 16);
        q.schedule(t(2.0), "b");
        q.schedule(t(1.0), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(reg.snapshot().counters["sim.queue.scheduled"], 2);

        let mut p: EventQueue<u32> = EventQueue::with_capacity(8);
        p.schedule(t(1.0), 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn same_time_rescheduling_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1u32);
        q.pop();
        q.schedule(q.now(), 2u32); // immediate follow-up at the same time
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
