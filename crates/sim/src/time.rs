//! Simulation time: integer nanoseconds with f64-second conversions.
//!
//! Nanosecond resolution keeps arithmetic exact for the microsecond-to-
//! second quantities this simulator composes (1 ns ≪ the 10 µs control
//! overhead, the smallest modeled cost).

use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock (nanoseconds since t = 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since t = 0 as f64.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Length in f64 seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative time span"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let d = SimDuration::from_secs_f64(0.0019772);
        assert!((d.as_secs_f64() - 0.0019772).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(1.0);
        let u = t + SimDuration::from_secs_f64(0.5);
        assert!((u.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!(((u - t).as_secs_f64() - 0.5).abs() < 1e-12);
        assert_eq!(t.max(u), u);
    }

    #[test]
    #[should_panic(expected = "negative time span")]
    fn negative_span_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        SimDuration::from_secs_f64(-1.0);
    }
}
