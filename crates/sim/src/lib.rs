//! # hprc-sim
//!
//! Deterministic simulator of a Cray XD1-class HPRC node: the experimental
//! substrate of the reproduction. It models the pieces of section 4 —
//! the vendor full-configuration API with its software overhead
//! ([`cray_api`]), the ICAP partial-reconfiguration path with its BRAM
//! buffer and control FSM ([`icap`]), the node's I/O and core timing
//! ([`node`]) — and executes task-call sequences under FRTR and PRTR
//! ([`executor`]), producing totals and event timelines ([`trace`]) that
//! can be validated against the analytical model of `hprc-model`.
//!
//! Every executor entry point takes an [`hprc_ctx::ExecCtx`] carrying the
//! observability registry, seed, calibration, and parallelism budget;
//! `ExecCtx::default()` is the plain, uninstrumented run.
//!
//! ```
//! use hprc_ctx::ExecCtx;
//! use hprc_fpga::floorplan::Floorplan;
//! use hprc_sim::executor::{run_frtr, run_prtr};
//! use hprc_sim::node::NodeConfig;
//! use hprc_sim::task::{PrtrCall, TaskCall};
//!
//! let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
//! let ctx = ExecCtx::default();
//! // 20 calls, each as long as one partial configuration (the peak point).
//! let calls: Vec<PrtrCall> = (0..20)
//!     .map(|i| PrtrCall {
//!         task: TaskCall::with_task_time("Sobel Filter", &node, node.t_prtr_s()),
//!         hit: false,
//!         slot: i % 2,
//!     })
//!     .collect();
//! let tasks: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
//! let frtr = run_frtr(&node, &tasks, &ctx).unwrap();
//! let prtr = run_prtr(&node, &calls, &ctx).unwrap();
//! assert!(frtr.total_s() / prtr.total_s() > 50.0); // PRTR wins big here
//! ```

#![warn(missing_docs)]

pub mod cray_api;
pub(crate) mod delta;
pub mod engine;
pub mod error;
pub mod executor;
pub mod icap;
pub mod node;
pub mod preempt;
pub mod rtcore;
pub mod task;
pub mod time;
pub mod trace;

pub use cray_api::CrayConfigApi;
pub use engine::EventQueue;
pub use error::SimError;
pub use executor::{
    run_frtr, run_frtr_reference, run_prtr, run_prtr_reference, CallTiming, ExecutionReport,
};
pub use icap::IcapPath;
pub use node::NodeConfig;
pub use preempt::{run_preemptive, run_preemptive_reference, PreemptSegment};
pub use rtcore::{Fifo, MemoryBank, RtCore};
pub use task::{PrtrCall, TaskCall};
pub use time::{SimDuration, SimTime};
pub use trace::{EventKind, Lane, Timeline};
