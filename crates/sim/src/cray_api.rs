//! The vendor's full-configuration software API (section 4.1).
//!
//! On Cray XD1, `fpga_load`-style vendor calls download a **full** bitstream
//! over an external port (SelectMap). The call carries heavy software
//! overhead — Table 2 measures 1678.04 ms against a 36.09 ms raw transfer —
//! and it *rejects* partial bitstreams for two reasons the paper
//! enumerates: a size check, and a DONE-signal check that always "fails"
//! during partial reconfiguration because the device is already configured.

use hprc_ctx::ExecCtx;
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::time::SimDuration;

/// The vendor configuration API model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrayConfigApi {
    /// External configuration port throughput, bytes/s (SelectMap: 66 MB/s).
    pub port_bytes_per_sec: f64,
    /// Fixed software overhead per call, seconds (file handling, device
    /// reset, DONE polling). Calibrated: 1678.04 ms − 36.09 ms = 1641.95 ms.
    pub software_overhead_s: f64,
    /// Expected full-bitstream size for the size check.
    pub full_bitstream_bytes: u64,
    /// Whether the API has been patched to skip the size and DONE checks
    /// (the modification the paper proposes to vendors — not possible on
    /// the closed XD1 libraries, hence the ICAP work-around).
    pub patched: bool,
}

impl CrayConfigApi {
    /// The measured XD1 API for the XC2VP50 (Table 2's "measured" full
    /// configuration).
    pub fn xd1_measured(full_bitstream_bytes: u64) -> CrayConfigApi {
        CrayConfigApi {
            port_bytes_per_sec: 66e6,
            software_overhead_s: 1.6419527,
            full_bitstream_bytes,
            patched: false,
        }
    }

    /// An overhead-free API — Table 2's "estimated" full configuration
    /// (pure SelectMap transfer).
    pub fn ideal(full_bitstream_bytes: u64) -> CrayConfigApi {
        CrayConfigApi {
            port_bytes_per_sec: 66e6,
            software_overhead_s: 0.0,
            full_bitstream_bytes,
            patched: false,
        }
    }

    /// Attempts to configure the device with a bitstream of `bytes` bytes.
    /// `is_partial` marks partial bitstreams; `done_high` is the state of
    /// the DONE pin when the call is made (high once the FPGA is already
    /// configured — always the case during run-time reconfiguration).
    ///
    /// Returns the call's duration. Accounting goes to `ctx.registry`:
    /// `sim.cray_api.calls` counts every attempt,
    /// `sim.cray_api.rejections` the size/DONE failures, and
    /// `sim.cray_api.busy_s` histograms the accepted calls' durations.
    ///
    /// # Errors
    ///
    /// Unpatched APIs reject any bitstream failing the size check, and any
    /// call made while DONE is high with a bitstream that would not reset
    /// the device — exactly the two failure modes of section 4.1.
    pub fn configure(
        &self,
        bytes: u64,
        is_partial: bool,
        done_high: bool,
        ctx: &ExecCtx,
    ) -> Result<SimDuration, SimError> {
        ctx.registry.counter("sim.cray_api.calls").inc();
        if !self.patched {
            if bytes != self.full_bitstream_bytes {
                ctx.registry.counter("sim.cray_api.rejections").inc();
                return Err(SimError::ApiRejected(format!(
                    "bitstream size {} != expected full size {} (size check)",
                    bytes, self.full_bitstream_bytes
                )));
            }
            if is_partial && done_high {
                ctx.registry.counter("sim.cray_api.rejections").inc();
                return Err(SimError::ApiRejected(
                    "DONE asserted during download (device already configured)".into(),
                ));
            }
        }
        let d = SimDuration::from_secs_f64(
            self.software_overhead_s + bytes as f64 / self.port_bytes_per_sec,
        );
        ctx.registry
            .histogram("sim.cray_api.busy_s")
            .record(d.as_secs_f64());
        Ok(d)
    }

    /// Replays the accounting of `count` accepted [`CrayConfigApi::configure`]
    /// calls that all returned duration `d`, without re-simulating them.
    ///
    /// This is the bookkeeping hook for the FRTR steady-state fast path: a
    /// periodic call sequence proves one full period per-call (through
    /// `configure`, checks and all) and then jumps the remaining
    /// repetitions, which must still land in `sim.cray_api.calls` and the
    /// `sim.cray_api.busy_s` histogram exactly as `count` per-call
    /// invocations would have.
    pub fn record_repeated(&self, d: SimDuration, count: u64, ctx: &ExecCtx) {
        if count == 0 {
            return;
        }
        ctx.registry.counter("sim.cray_api.calls").add(count);
        ctx.registry
            .histogram("sim.cray_api.busy_s")
            .record_cycle(&[d.as_secs_f64()], count);
    }

    /// One fault-injectable configuration attempt: the injection hook
    /// the faulty executors drive for full reconfigurations. Runs the
    /// normal [`CrayConfigApi::configure`] accounting (the transfer
    /// happened and occupied the port either way), then applies the
    /// injected `outcome`: on a fault, bumps `sim.cray_api.faults` and
    /// returns [`SimError::TransientFault`] for the caller's recovery
    /// policy to handle.
    ///
    /// # Errors
    ///
    /// Size/DONE rejections propagate as in [`CrayConfigApi::configure`];
    /// injected faults surface as [`SimError::TransientFault`].
    pub fn configure_attempt(
        &self,
        bytes: u64,
        is_partial: bool,
        done_high: bool,
        outcome: hprc_fault::AttemptOutcome,
        ctx: &ExecCtx,
    ) -> Result<SimDuration, SimError> {
        let d = self.configure(bytes, is_partial, done_high, ctx)?;
        match outcome {
            hprc_fault::AttemptOutcome::Success => Ok(d),
            hprc_fault::AttemptOutcome::Fault(site) => {
                ctx.registry.counter("sim.cray_api.faults").inc();
                Err(SimError::TransientFault(format!(
                    "configuration transfer failed: {}",
                    site.name()
                )))
            }
        }
    }

    /// Full-configuration time in seconds (the `T_FRTR` this API induces).
    pub fn full_configuration_time_s(&self) -> f64 {
        self.software_overhead_s + self.full_bitstream_bytes as f64 / self.port_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u64 = 2_381_764;

    fn ctx() -> ExecCtx {
        ExecCtx::default()
    }

    #[test]
    fn measured_full_configuration_matches_table2() {
        let api = CrayConfigApi::xd1_measured(FULL);
        let t = api.full_configuration_time_s();
        assert!((t * 1e3 - 1678.04).abs() < 0.05, "t = {} ms", t * 1e3);
        let d = api.configure(FULL, false, false, &ctx()).unwrap();
        assert!((d.as_secs_f64() - t).abs() < 1e-9);
    }

    #[test]
    fn estimated_full_configuration_matches_table2() {
        let api = CrayConfigApi::ideal(FULL);
        let t = api.full_configuration_time_s();
        assert!((t * 1e3 - 36.09).abs() < 0.01, "t = {} ms", t * 1e3);
    }

    #[test]
    fn partial_bitstream_fails_size_check() {
        let api = CrayConfigApi::xd1_measured(FULL);
        let err = api.configure(404_168, true, true, &ctx()).unwrap_err();
        assert!(err.to_string().contains("size check"));
    }

    #[test]
    fn full_size_partial_fails_done_check() {
        // Even a partial bitstream padded to full size trips the DONE check
        // when the device is already running.
        let api = CrayConfigApi::xd1_measured(FULL);
        let err = api.configure(FULL, true, true, &ctx()).unwrap_err();
        assert!(err.to_string().contains("DONE"));
    }

    #[test]
    fn configure_counts_calls_and_rejections() {
        let ctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let api = CrayConfigApi::xd1_measured(FULL);
        api.configure(FULL, false, false, &ctx).unwrap();
        api.configure(404_168, true, true, &ctx).unwrap_err();
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.cray_api.calls"], 2);
        assert_eq!(snap.counters["sim.cray_api.rejections"], 1);
        assert_eq!(snap.histograms["sim.cray_api.busy_s"].count, 1);
    }

    #[test]
    fn configure_attempt_applies_injected_outcome() {
        use hprc_fault::{AttemptOutcome, FaultSite};
        let ctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let api = CrayConfigApi::xd1_measured(FULL);
        let ok = api
            .configure_attempt(FULL, false, false, AttemptOutcome::Success, &ctx)
            .unwrap();
        assert_eq!(
            ok,
            api.configure(FULL, false, false, &ExecCtx::default())
                .unwrap()
        );
        let err = api.configure_attempt(
            FULL,
            false,
            false,
            AttemptOutcome::Fault(FaultSite::ApiTransfer),
            &ctx,
        );
        assert!(matches!(err, Err(SimError::TransientFault(_))));
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.cray_api.calls"], 2);
        assert_eq!(snap.counters["sim.cray_api.faults"], 1);
        // The failed attempt still occupied the port for its duration.
        assert_eq!(snap.histograms["sim.cray_api.busy_s"].count, 2);
    }

    #[test]
    fn patched_api_accepts_partials() {
        let api = CrayConfigApi {
            patched: true,
            ..CrayConfigApi::xd1_measured(FULL)
        };
        let d = api.configure(404_168, true, true, &ctx()).unwrap();
        assert!(d.as_secs_f64() > 0.0);
    }
}
