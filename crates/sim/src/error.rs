//! Error type for the node simulator.

use std::fmt;

/// Errors from configuring or driving the simulated HPRC node.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The vendor configuration API rejected a bitstream.
    ApiRejected(String),
    /// The executor was driven with inconsistent inputs.
    InvalidRun(String),
    /// A configuration attempt failed with an injected transient fault
    /// (crate `hprc-fault`); the recovery policy decides what happens
    /// next, so this error never escapes a faulty executor.
    TransientFault(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ApiRejected(msg) => write!(f, "configuration API rejected: {msg}"),
            SimError::InvalidRun(msg) => write!(f, "invalid run: {msg}"),
            SimError::TransientFault(msg) => write!(f, "transient fault injected: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::ApiRejected("partial".into())
            .to_string()
            .contains("partial"));
    }
}
