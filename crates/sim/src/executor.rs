//! FRTR and PRTR executors: drive a sequence of task calls through the
//! simulated node and measure the total execution time the analytical
//! model predicts.
//!
//! **FRTR** (Figure 3): every call fully reconfigures the device through
//! the vendor API — nothing overlaps, because a full configuration resets
//! the fabric. Per call: `T_FRTR + T_control + T_task`, serial.
//!
//! **PRTR** (Figure 4): the runtime overlaps the next call's partial
//! reconfiguration with the current call's execution, exactly as
//! equation (3) accounts it:
//!
//! * *miss* (Figure 4(a)): the next configuration starts streaming through
//!   the ICAP when the current task starts; the decision check runs when
//!   the task ends. The call becomes ready at
//!   `max(exec_end_prev + T_decision, config_end)` — contributing
//!   `max(T_task + T_decision, T_PRTR)` per call in steady state;
//! * *hit* (Figure 4(b)): the decision overlaps execution; ready at
//!   `max(exec_end_prev, decision_end)` — contributing
//!   `max(T_task, T_decision)`.
//!
//! Every call then pays `T_control` before executing. The model's single
//! leading `X_decision` appears as the first call's un-overlapped decision.
//! The simulator additionally serializes configurations on the single ICAP
//! and (optionally) delays them until the previous call's input data has
//! drained from the shared host link — second-order effects equation (3)
//! ignores, which is precisely what makes simulator-vs-model validation
//! meaningful.
//!
//! # Steady-state fast path
//!
//! The per-call recurrence of both executors is a deterministic function
//! of (a) the call's own parameters and (b) a tiny relative carry-over
//! state, and both are *time-translation invariant*: shifting the inputs
//! by Δ shifts every produced event by Δ. [`run_frtr`] and [`run_prtr`]
//! exploit this. They simulate per-call (the reference recurrence,
//! verbatim) while remembering, for each `(call key, relative state)`
//! pair, where that situation was last seen. When the pair recurs after
//! `p` calls, the executor key-compares forward as many whole periods as
//! actually repeat and replaces them with a closed-form jump: one
//! run-length-encoded timeline block ([`Timeline::push_repeat`]), shifted
//! copies of the period's [`CallTiming`]s, bulk counter adds, and bulk
//! histogram sample replication ([`hprc_obs::Histogram::record_cycle`]).
//! Every total, per-call timing, metric, and expanded timeline event is
//! **bit-identical** to the per-call path — the jump only elides work
//! whose outcome is already proven, and all floating-point derivation
//! downstream happens on the expanded event stream in original order.
//! Aperiodic stretches (e.g. the dithered hit patterns of the validation
//! experiment) simply keep simulating per-call; detection re-arms after
//! every jump, so a sequence with several periodic runs jumps several
//! times. [`run_frtr_reference`] and [`run_prtr_reference`] expose the
//! pure per-call path as the equivalence oracle.

use std::collections::HashMap;

use hprc_ctx::{ExecCtx, Symbol};
use hprc_fault::{AttemptOutcome, CallFate, FaultPlan, FaultSite, FaultState};
use hprc_obs::SpanId;
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::node::NodeConfig;
use crate::task::{PrtrCall, TaskCall};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventKind, Lane, Timeline};

/// Timing of one executed call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallTiming {
    /// Task name (interned).
    pub name: Symbol,
    /// Whether the call hit (PRTR only; always false under FRTR).
    pub hit: bool,
    /// When its (re-)configuration started (if one was needed).
    pub config_start: Option<SimTime>,
    /// When its (re-)configuration finished.
    pub config_end: Option<SimTime>,
    /// When execution started (after transfer of control).
    pub exec_start: SimTime,
    /// When execution finished.
    pub exec_end: SimTime,
}

impl CallTiming {
    /// The timing shifted `offset_ns` later.
    pub(crate) fn shifted(self, offset_ns: u64) -> CallTiming {
        CallTiming {
            config_start: self.config_start.map(|t| SimTime(t.0 + offset_ns)),
            config_end: self.config_end.map(|t| SimTime(t.0 + offset_ns)),
            exec_start: SimTime(self.exec_start.0 + offset_ns),
            exec_end: SimTime(self.exec_end.0 + offset_ns),
            ..self
        }
    }
}

/// Result of executing a call sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Wall-clock total, from t = 0 to the last task's completion.
    pub total: SimDuration,
    /// Per-call timings.
    pub calls: Vec<CallTiming>,
    /// Full event timeline (renders the Figures 3/4 profiles).
    pub timeline: Timeline,
    /// Number of *successful* (re-)configurations performed.
    pub n_config: u64,
    /// Calls dropped after exhausting every recovery attempt (always 0
    /// on fault-free runs; see crate `hprc-fault`).
    pub n_dropped: u64,
}

impl ExecutionReport {
    /// Total in seconds.
    pub fn total_s(&self) -> f64 {
        self.total.as_secs_f64()
    }
}

/// Everything that determines one FRTR call's contribution: the vendor
/// API call is parameterized by the node alone, so the call's name and
/// data sizes (which fix `T_task` and the transfer events) are the
/// whole story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FrtrKey {
    name: Symbol,
    bytes_in: u64,
    bytes_out: u64,
}

/// Everything that determines one PRTR call's contribution, given the
/// relative carry-over state: name and data sizes fix the durations,
/// `hit` picks the recurrence arm, `slot` the execution lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PrtrKey {
    name: Symbol,
    bytes_in: u64,
    bytes_out: u64,
    hit: bool,
    slot: usize,
}

/// The carry-over state of the PRTR recurrence, expressed relative to
/// the previous call's `exec_start` so that time-translated repetitions
/// compare equal. `icap_ns` clamps `icap_free` to ≥ `prev_start`, which
/// is behavior-preserving: the ICAP horizon is only ever read through
/// `max(earliest, icap_free)` with `earliest ≥ prev_start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RelState {
    /// `prev_end − prev_start` (the previous execution's length).
    exec_ns: u64,
    /// `max(icap_free, prev_start) − prev_start`.
    icap_ns: u64,
    /// The previous call's input bytes (gates the shared-channel
    /// ablation's configuration start).
    prev_bytes_in: u64,
}

/// Where a `(key, state)` pair was last seen: enough to locate the
/// candidate period's calls, events, and timings. Shared with the
/// preemptive renderer ([`crate::preempt`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeenAt {
    /// Call index about to be processed when the pair was recorded.
    pub(crate) i0: usize,
    /// The time anchor at that point (`now` for FRTR, `prev_start` for
    /// PRTR); the per-period shift is `anchor_now − anchor_then`.
    pub(crate) anchor: SimTime,
    /// `timeline.n_items()` at that point.
    pub(crate) items_marker: usize,
    /// `timings.len()` at that point.
    pub(crate) timings_marker: usize,
    /// The journal position at that point (for
    /// [`hprc_obs::Journal::replay_cycle`]).
    pub(crate) jmark: hprc_obs::JournalMark,
}

/// Key-compares forward from call `j`: how many whole periods of length
/// `p` (the keys at `i0..i0+p`) repeat verbatim before the sequence
/// diverges or ends. Runs in O(verified calls) and fails at the first
/// mismatching key.
pub(crate) fn verified_periods<K: PartialEq>(keys: &[K], i0: usize, p: usize, mut j: usize) -> u64 {
    let mut m = 0u64;
    while j + p <= keys.len() && (0..p).all(|k| keys[j + k] == keys[i0 + k]) {
        m += 1;
        j += p;
    }
    m
}

/// Memoized derived event labels. Slow-path calls label their timeline
/// events with strings derived from the (already interned) task name —
/// `"ctl:<name>"`, `"cfg:<name>@PRR<slot>"`, … — and formatting plus
/// interning one per event dominated the per-call profile. Derivations
/// are memoized per `(prefix, name, slot)`; workload vocabularies are
/// tiny, so the map stays a handful of entries.
#[derive(Default)]
pub(crate) struct LabelCache(HashMap<(u8, Symbol, usize), Symbol>);

pub(crate) const L_FULL: u8 = 0;
pub(crate) const L_CTL: u8 = 1;
pub(crate) const L_DEC: u8 = 2;
pub(crate) const L_CFG: u8 = 3;
pub(crate) const L_IN: u8 = 4;
pub(crate) const L_OUT: u8 = 5;
pub(crate) const L_RCV: u8 = 6;
pub(crate) const L_SAV: u8 = 7;
pub(crate) const L_RES: u8 = 8;

impl LabelCache {
    pub(crate) fn get(&mut self, tag: u8, name: Symbol, slot: usize) -> Symbol {
        *self.0.entry((tag, name, slot)).or_insert_with(|| {
            Symbol::intern(&match tag {
                L_FULL => format!("full:{name}"),
                L_CTL => format!("ctl:{name}"),
                L_DEC => format!("dec:{name}"),
                L_CFG => format!("cfg:{name}@PRR{slot}"),
                L_IN => format!("in:{name}"),
                L_RCV => format!("rcv:{name}"),
                L_SAV => format!("sav:{name}@PRR{slot}"),
                L_RES => format!("res:{name}@PRR{slot}"),
                _ => format!("out:{name}"),
            })
        })
    }
}

/// The fault/recovery counter bundle of one faulty run, registered
/// under `{prefix}.fault.*`. Only created when a plan is armed, so
/// fault-free runs keep their metric snapshots byte-identical.
struct FaultMetrics {
    injected: hprc_obs::Counter,
    crc: hprc_obs::Counter,
    icap_timeout: hprc_obs::Counter,
    activation: hprc_obs::Counter,
    api_transfer: hprc_obs::Counter,
    retries: hprc_obs::Counter,
    escalations: hprc_obs::Counter,
    forced_full: hprc_obs::Counter,
    drops: hprc_obs::Counter,
    escalated_full_configs: hprc_obs::Counter,
    recovery_s: hprc_obs::Histogram,
}

impl FaultMetrics {
    fn new(registry: &hprc_obs::Registry, prefix: &str) -> Self {
        let c = |name: &str| registry.counter(&format!("{prefix}.fault.{name}"));
        FaultMetrics {
            injected: c("injected"),
            crc: c("crc"),
            icap_timeout: c("icap_timeout"),
            activation: c("activation"),
            api_transfer: c("api_transfer"),
            retries: c("retries"),
            escalations: c("escalations"),
            forced_full: c("forced_full"),
            drops: c("drops"),
            escalated_full_configs: c("escalated_full_configs"),
            recovery_s: registry.histogram(&format!("{prefix}.fault.recovery_s")),
        }
    }

    /// Records one faulty call's fate; `recovery_extra_s` is the
    /// chain's wall-clock beyond what the clean configuration would
    /// have cost (the retry-latency histogram sample).
    fn record(&self, fate: &CallFate, recovery_extra_s: f64) {
        self.injected.add(fate.injected());
        self.crc.add(fate.crc_refetches as u64);
        self.icap_timeout.add(fate.icap_timeouts as u64);
        self.activation.add(fate.activation_fails as u64);
        self.api_transfer.add(fate.api_fails as u64);
        self.retries.add(fate.retries());
        if fate.escalated {
            self.escalations.inc();
        }
        if fate.forced_full {
            self.forced_full.inc();
        }
        if fate.dropped {
            self.drops.inc();
        } else if fate.escalated || fate.forced_full {
            self.escalated_full_configs.inc();
        }
        self.recovery_s.record(recovery_extra_s);
    }
}

/// Pending outgoing flow link while laying out a recovery chain: the
/// latest chain node's journal id plus the kind the *next* edge out of
/// it carries (`fault` out of a failed attempt, `retry` out of a
/// recovery window, `escalate` into the full chain, `hide` out of the
/// originating prefetch decision). `None` while the journal is off or
/// the chain has no node yet.
type PendingLink = Option<(SpanId, &'static str)>;

/// Journals one chain node: links the pending edge into it, then makes
/// it the new pending tail with `next_kind`.
fn link_chain(
    j: &hprc_obs::Journal,
    chain: &mut PendingLink,
    node: Option<SpanId>,
    next_kind: &'static str,
) {
    let Some(id) = node else { return };
    if let Some((from, kind)) = chain.take() {
        j.flow(Some(from), Some(id), kind);
    }
    *chain = Some((id, next_kind));
}

/// Lays out a faulty call's full-reconfiguration attempts from `start`:
/// per attempt one [`EventKind::FullConfig`] window (driven through the
/// [`crate::cray_api::CrayConfigApi::configure_attempt`] hook) plus an
/// [`EventKind::Recovery`] backoff window after each non-terminal
/// failure (a drop's last failure retries nothing, so it pays no
/// backoff). Returns the chain's end. A zero-attempt fate (pure partial
/// success) returns `start` untouched.
///
/// Journal: each attempt is a `full-configure` event and each backoff a
/// `recovery` span, all parented to `jparent` and threaded onto
/// `jchain`'s flow-link chain.
#[allow(clippy::too_many_arguments)]
fn push_full_attempts(
    node: &NodeConfig,
    timeline: &mut Timeline,
    labels: &mut LabelCache,
    plan: &FaultPlan,
    fate: &CallFate,
    call_idx: u64,
    name: Symbol,
    start: SimTime,
    ctx: &ExecCtx,
    jparent: Option<SpanId>,
    jchain: &mut PendingLink,
) -> Result<SimTime, SimError> {
    let j = &ctx.journal;
    let full_bytes = node.full_config.full_bitstream_bytes;
    let t_full = SimDuration::from_secs_f64(node.full_config.full_configuration_time_s());
    let tid_cfg = Lane::ConfigPort.chrome_tid();
    let mut t = start;
    for attempt in 1..=fate.full_attempts {
        let outcome = plan.full_attempt(call_idx, attempt);
        let d = match node
            .full_config
            .configure_attempt(full_bytes, false, false, outcome, ctx)
        {
            Ok(d) => d,
            Err(SimError::TransientFault(_)) => t_full,
            Err(e) => return Err(e),
        };
        let ja = j.event("full-configure", jparent, t.0, tid_cfg);
        link_chain(j, jchain, ja, "fault");
        timeline.push(
            Lane::ConfigPort,
            EventKind::FullConfig,
            labels.get(L_FULL, name, 0),
            t,
            t + d,
        );
        t += d;
        if matches!(outcome, AttemptOutcome::Fault(_)) && attempt < fate.full_attempts {
            let pd = SimDuration::from_secs_f64(plan.policy.backoff_s(attempt));
            let jr = j.open("recovery", jparent, t.0, tid_cfg);
            link_chain(j, jchain, jr, "retry");
            timeline.push(
                Lane::ConfigPort,
                EventKind::Recovery,
                labels.get(L_RCV, name, 0),
                t,
                t + pd,
            );
            t += pd;
            j.close(jr, t.0);
        }
    }
    Ok(t)
}

/// Lays out a faulty PRTR miss's whole recovery chain from `start`:
/// the partial attempts (each an [`EventKind::PartialConfig`] window
/// through the [`crate::icap::IcapPath::transfer_attempt`] hook,
/// followed on failure by an [`EventKind::Recovery`] backoff — plus a
/// bitstream re-fetch after a CRC mismatch), then, if the fate
/// escalated or was forced full, the full-reconfiguration chain.
/// Returns the chain's end.
///
/// Journal: each partial attempt is a `configure` event and each
/// backoff a `recovery` span, parented to `jparent` and chained on
/// `jchain`; when the fate escalates, the edge into the first full
/// attempt is re-labelled `escalate`.
#[allow(clippy::too_many_arguments)]
fn push_partial_fault_chain(
    node: &NodeConfig,
    timeline: &mut Timeline,
    labels: &mut LabelCache,
    plan: &FaultPlan,
    fate: &CallFate,
    call_idx: u64,
    name: Symbol,
    slot: usize,
    start: SimTime,
    ctx: &ExecCtx,
    jparent: Option<SpanId>,
    jchain: &mut PendingLink,
) -> Result<SimTime, SimError> {
    let j = &ctx.journal;
    let t_prtr = node.icap.transfer_duration(node.prr_bitstream_bytes);
    let tid_cfg = Lane::ConfigPort.chrome_tid();
    let mut t = start;
    for attempt in 1..=fate.partial_attempts {
        let outcome = plan.partial_attempt(call_idx, attempt);
        let d = match node
            .icap
            .transfer_attempt(node.prr_bitstream_bytes, outcome, ctx)
        {
            Ok(d) => d,
            Err(SimError::TransientFault(_)) => t_prtr,
            Err(e) => return Err(e),
        };
        let ja = j.event("configure", jparent, t.0, tid_cfg);
        link_chain(j, jchain, ja, "fault");
        timeline.push(
            Lane::ConfigPort,
            EventKind::PartialConfig,
            labels.get(L_CFG, name, slot),
            t,
            t + d,
        );
        t += d;
        if let AttemptOutcome::Fault(site) = outcome {
            // Every partial failure is followed by another attempt
            // (retry or escalation), so it always pays its backoff.
            let mut pause = plan.policy.backoff_s(attempt);
            if site == FaultSite::CrcMismatch {
                pause += plan.policy.refetch_s;
            }
            let pd = SimDuration::from_secs_f64(pause);
            let jr = j.open("recovery", jparent, t.0, tid_cfg);
            link_chain(j, jchain, jr, "retry");
            timeline.push(
                Lane::ConfigPort,
                EventKind::Recovery,
                labels.get(L_RCV, name, slot),
                t,
                t + pd,
            );
            t += pd;
            j.close(jr, t.0);
        }
    }
    if fate.full_attempts > 0 {
        if let Some(c) = jchain.as_mut() {
            c.1 = "escalate";
        }
    }
    push_full_attempts(
        node, timeline, labels, plan, fate, call_idx, name, t, ctx, jparent, jchain,
    )
}

/// Executes `calls` under **FRTR**: full reconfiguration before every call.
///
/// Uses the steady-state fast path (see the module docs); the result is
/// bit-identical to [`run_frtr_reference`].
///
/// Metrics go to `ctx.registry` ([`ExecCtx::default`] records nothing):
/// call/config counters, a per-call latency histogram, and the
/// timeline's per-lane busy gauges under the `sim.frtr` prefix.
///
/// # Errors
///
/// Propagates vendor-API rejections (impossible for well-formed full
/// bitstreams).
pub fn run_frtr(
    node: &NodeConfig,
    calls: &[TaskCall],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_frtr_impl(node, calls, ctx, true, None)
}

/// [`run_frtr`] with a fault plan armed: every call's full
/// reconfiguration runs the plan's attempt chain (retries with
/// exponential backoff, then a drop once `max_full_attempts` is
/// exhausted). A disarmed plan takes the exact fault-free code path.
/// The steady-state fast path stays enabled and jumps across fault-free
/// stretches only — a faulty call can never sit inside a proven period,
/// so the result is bit-identical to [`run_frtr_faulty_reference`].
///
/// # Errors
///
/// As [`run_frtr`]; injected faults are recovered internally and never
/// escape.
pub fn run_frtr_faulty(
    node: &NodeConfig,
    calls: &[TaskCall],
    plan: &FaultPlan,
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_frtr_impl(node, calls, ctx, true, Some(plan))
}

/// The per-call oracle for [`run_frtr_faulty`]: same recurrence and
/// fault chains, no jumps.
///
/// # Errors
///
/// As [`run_frtr`].
pub fn run_frtr_faulty_reference(
    node: &NodeConfig,
    calls: &[TaskCall],
    plan: &FaultPlan,
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_frtr_impl(node, calls, ctx, false, Some(plan))
}

/// The per-call FRTR reference path: identical recurrence, no jumps.
/// This is the oracle the fast path's equivalence tests compare against.
///
/// # Errors
///
/// As [`run_frtr`].
pub fn run_frtr_reference(
    node: &NodeConfig,
    calls: &[TaskCall],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_frtr_impl(node, calls, ctx, false, None)
}

fn run_frtr_impl(
    node: &NodeConfig,
    calls: &[TaskCall],
    ctx: &ExecCtx,
    enable_jump: bool,
    plan: Option<&FaultPlan>,
) -> Result<ExecutionReport, SimError> {
    // Whole-run memo (see `crate::delta`): a disarmed plan takes the
    // exact fault-free path, so it keys as `None`.
    let plan_eff = plan.filter(|p| p.armed());
    let memo_key = (enable_jump && ctx.delta.is_enabled())
        .then(|| crate::delta::frtr_key(node, calls, plan_eff));
    let replayable = memo_key.is_some() && crate::delta::replay_allowed(ctx);
    if replayable {
        if let Some(r) = crate::delta::fetch(&ctx.delta, memo_key.as_deref().unwrap()) {
            ctx.delta.note_full_hit(calls.len() as u64);
            return Ok((*r).clone());
        }
    }

    let registry = &ctx.registry;
    let _span = registry.span("sim.run_frtr");
    let j = &ctx.journal;
    let tid_host = Lane::Host.chrome_tid();
    let tid_cfg = Lane::ConfigPort.chrome_tid();
    let jrun = j.enter("sim.run_frtr", 0, tid_host);
    let m_calls = registry.counter("sim.frtr.calls");
    let m_configs = registry.counter("sim.frtr.full_configs");
    let m_latency = registry.histogram("sim.frtr.call_latency_s");

    let t_control = SimDuration::from_secs_f64(node.control_overhead_s);
    let full_bytes = node.full_config.full_bitstream_bytes;

    // Armed fault plan: pre-derive every call's fate (a pure function
    // of the plan). Disarmed plans take the exact fault-free path.
    let plan = plan_eff;
    let fates: Vec<CallFate> = plan
        .map(|p| (0..calls.len()).map(|i| p.full_fate(i as u64)).collect())
        .unwrap_or_default();
    let fm = plan.map(|_| FaultMetrics::new(registry, "sim.frtr"));
    let t_frtr_clean_s = node.full_config.full_configuration_time_s();

    // Keys carry a salt: 0 for fault-free fates, a unique per-index
    // value for faulty ones — so a faulty call never key-matches and no
    // proven period can span a fault. Jumps stay confined to clean
    // stretches, where the recurrence is untouched.
    let keys: Vec<(FrtrKey, u64)> = if enable_jump {
        calls
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let salt = match plan {
                    Some(_) if !fates[i].is_clean() => i as u64 + 1,
                    _ => 0,
                };
                (
                    FrtrKey {
                        name: c.name,
                        bytes_in: c.bytes_in,
                        bytes_out: c.bytes_out,
                    },
                    salt,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut seen: HashMap<(FrtrKey, u64), SeenAt> = HashMap::new();
    let mut n_dropped = 0u64;

    let mut now = SimTime::ZERO;
    let mut timeline = Timeline::default();
    let mut labels = LabelCache::default();
    let mut timings: Vec<CallTiming> = Vec::with_capacity(calls.len());
    // The vendor call's duration is a function of the node alone; keep
    // the last proven one for bulk accounting at a jump.
    let mut last_api_d = SimDuration::ZERO;

    let mut i = 0usize;
    while i < calls.len() {
        if enable_jump {
            if let Some(at) = seen.get(&keys[i]).copied() {
                let p = i - at.i0;
                let m = verified_periods(&keys, at.i0, p, i);
                if m >= 1 {
                    // Jump m whole periods: calls i .. i + m·p repeat the
                    // proven block, each period shifted one more Δ.
                    let delta = now.0 - at.anchor.0;
                    let pattern = timeline.split_off_events(at.items_marker);
                    timeline.push_repeat(pattern, m + 1, SimDuration(delta));
                    let latencies: Vec<f64> = timings[at.timings_marker..]
                        .iter()
                        .map(|t| {
                            (t.exec_end - t.config_start.expect("FRTR always configures"))
                                .as_secs_f64()
                        })
                        .collect();
                    let block = timings[at.timings_marker..].to_vec();
                    for k in 1..=m {
                        timings.extend(block.iter().map(|t| t.shifted(k * delta)));
                    }
                    let jumped = m * p as u64;
                    m_calls.add(jumped);
                    m_configs.add(jumped);
                    m_latency.record_cycle(&latencies, m);
                    node.full_config.record_repeated(last_api_d, jumped, ctx);
                    j.replay_cycle(at.jmark, m, delta);
                    now = SimTime(now.0 + m * delta);
                    i += m as usize * p;
                    // Re-arm: the tail may hold further periodic runs.
                    seen.clear();
                    continue;
                }
            }
            seen.insert(
                keys[i],
                SeenAt {
                    i0: i,
                    anchor: now,
                    items_marker: timeline.n_items(),
                    timings_marker: timings.len(),
                    jmark: j.mark(),
                },
            );
        }

        let call = &calls[i];

        // Faulty call: lay out its recovery chain instead of the plain
        // configure. Clean-fated calls fall through to the unchanged
        // fault-free body (and stay jumpable).
        if let Some(p) = plan {
            let fate = fates[i];
            if !fate.is_clean() {
                let cs = now;
                let jcall = j.open(call.name.as_str(), jrun, cs.0, tid_host);
                let mut jchain: PendingLink = None;
                let ce = push_full_attempts(
                    node,
                    &mut timeline,
                    &mut labels,
                    p,
                    &fate,
                    i as u64,
                    call.name,
                    cs,
                    ctx,
                    jcall,
                    &mut jchain,
                )?;
                if let Some(fm) = &fm {
                    fm.record(&fate, (ce - cs).as_secs_f64() - t_frtr_clean_s);
                }
                m_calls.inc();
                if fate.dropped {
                    n_dropped += 1;
                    timings.push(CallTiming {
                        name: call.name,
                        hit: false,
                        config_start: Some(cs),
                        config_end: Some(ce),
                        exec_start: ce,
                        exec_end: ce,
                    });
                    m_latency.record((ce - cs).as_secs_f64());
                    j.close(jcall, ce.0);
                    now = ce;
                } else {
                    m_configs.inc();
                    let control_end = ce + t_control;
                    timeline.push(
                        Lane::Host,
                        EventKind::Control,
                        labels.get(L_CTL, call.name, 0),
                        ce,
                        control_end,
                    );
                    let exec_start = control_end;
                    let exec_end = exec_start + SimDuration::from_secs_f64(call.task_time_s(node));
                    push_exec_events(
                        &mut timeline,
                        &mut labels,
                        node,
                        call,
                        0,
                        exec_start,
                        exec_end,
                    );
                    let jexec = j.event("execute", jcall, exec_start.0, Lane::Prr(0).chrome_tid());
                    j.flow(jchain.map(|(id, _)| id), jexec, "activate");
                    timings.push(CallTiming {
                        name: call.name,
                        hit: false,
                        config_start: Some(cs),
                        config_end: Some(ce),
                        exec_start,
                        exec_end,
                    });
                    m_latency.record((exec_end - cs).as_secs_f64());
                    j.close(jcall, exec_end.0);
                    now = exec_end;
                }
                i += 1;
                continue;
            }
        }

        let config_start = now;
        // A full bitstream resets the device, so DONE is irrelevant here.
        let d = node.full_config.configure(full_bytes, false, false, ctx)?;
        last_api_d = d;
        let config_end = config_start + d;
        let jcall = j.open(call.name.as_str(), jrun, config_start.0, tid_host);
        let jcfg = j.event("configure", jcall, config_start.0, tid_cfg);
        timeline.push(
            Lane::ConfigPort,
            EventKind::FullConfig,
            labels.get(L_FULL, call.name, 0),
            config_start,
            config_end,
        );
        let control_end = config_end + t_control;
        timeline.push(
            Lane::Host,
            EventKind::Control,
            labels.get(L_CTL, call.name, 0),
            config_end,
            control_end,
        );
        let exec_start = control_end;
        let exec_end = exec_start + SimDuration::from_secs_f64(call.task_time_s(node));
        push_exec_events(
            &mut timeline,
            &mut labels,
            node,
            call,
            0,
            exec_start,
            exec_end,
        );
        let jexec = j.event("execute", jcall, exec_start.0, Lane::Prr(0).chrome_tid());
        j.flow(jcfg, jexec, "activate");
        j.close(jcall, exec_end.0);
        timings.push(CallTiming {
            name: call.name,
            hit: false,
            config_start: Some(config_start),
            config_end: Some(config_end),
            exec_start,
            exec_end,
        });
        m_calls.inc();
        m_configs.inc();
        m_latency.record((exec_end - config_start).as_secs_f64());
        now = exec_end;
        i += 1;
    }
    j.exit(jrun, now.0);
    timeline.record_metrics(registry, "sim.frtr");
    let report = ExecutionReport {
        total: now - SimTime::ZERO,
        n_config: calls.len() as u64 - n_dropped,
        calls: timings,
        timeline,
        n_dropped,
    };
    if let Some(key) = memo_key {
        crate::delta::store(&ctx.delta, key, &report);
        if replayable {
            ctx.delta.note_miss(calls.len() as u64);
        }
    }
    Ok(report)
}

/// Executes `calls` under **PRTR** with the per-call hit/miss outcomes and
/// slot assignments supplied by a configuration-caching simulation.
///
/// Uses the steady-state fast path (see the module docs); the result is
/// bit-identical to [`run_prtr_reference`].
///
/// Metrics go to `ctx.registry` ([`ExecCtx::default`] records nothing):
/// hit/miss/config counters, a per-call latency histogram, ICAP transfer
/// accounting, and the timeline's per-lane busy gauges under the
/// `sim.prtr` prefix.
///
/// # Errors
///
/// [`SimError::InvalidRun`] when a slot index exceeds the node's PRR count
/// or the call list is empty.
pub fn run_prtr(
    node: &NodeConfig,
    calls: &[PrtrCall],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_prtr_impl(node, calls, ctx, true, None)
}

/// [`run_prtr`] with a fault plan armed: every miss runs the plan's
/// partial-attempt chain — bounded retries with exponential backoff
/// (plus a bitstream re-fetch after a CRC mismatch), escalation to full
/// reconfiguration after `max_partial_attempts` failures, blacklisting
/// of repeatedly escalating PRRs (via a [`FaultState`] that replays in
/// lockstep with the scheduler's), and a drop once every attempt is
/// exhausted. A disarmed plan takes the exact fault-free code path.
/// The steady-state fast path stays enabled and jumps across fault-free
/// stretches only, so the result is bit-identical to
/// [`run_prtr_faulty_reference`].
///
/// # Errors
///
/// As [`run_prtr`]; injected faults are recovered internally and never
/// escape.
pub fn run_prtr_faulty(
    node: &NodeConfig,
    calls: &[PrtrCall],
    plan: &FaultPlan,
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_prtr_impl(node, calls, ctx, true, Some(plan))
}

/// The per-call oracle for [`run_prtr_faulty`]: same recurrence and
/// fault chains, no jumps.
///
/// # Errors
///
/// As [`run_prtr`].
pub fn run_prtr_faulty_reference(
    node: &NodeConfig,
    calls: &[PrtrCall],
    plan: &FaultPlan,
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_prtr_impl(node, calls, ctx, false, Some(plan))
}

/// The per-call PRTR reference path: identical recurrence, no jumps.
/// This is the oracle the fast path's equivalence tests compare against.
///
/// # Errors
///
/// As [`run_prtr`].
pub fn run_prtr_reference(
    node: &NodeConfig,
    calls: &[PrtrCall],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    run_prtr_impl(node, calls, ctx, false, None)
}

fn run_prtr_impl(
    node: &NodeConfig,
    calls: &[PrtrCall],
    ctx: &ExecCtx,
    enable_jump: bool,
    plan: Option<&FaultPlan>,
) -> Result<ExecutionReport, SimError> {
    let registry = &ctx.registry;
    if calls.is_empty() {
        return Err(SimError::InvalidRun("empty call sequence".into()));
    }
    if let Some(bad) = calls.iter().find(|c| c.slot >= node.n_prrs) {
        return Err(SimError::InvalidRun(format!(
            "slot {} out of range for {} PRRs",
            bad.slot, node.n_prrs
        )));
    }

    // Whole-run memo (see `crate::delta`): a disarmed plan takes the
    // exact fault-free path, so it keys as `None`.
    let plan_eff = plan.filter(|p| p.armed());
    let memo_key = (enable_jump && ctx.delta.is_enabled())
        .then(|| crate::delta::prtr_key(node, calls, plan_eff));
    let replayable = memo_key.is_some() && crate::delta::replay_allowed(ctx);
    if replayable {
        if let Some(r) = crate::delta::fetch(&ctx.delta, memo_key.as_deref().unwrap()) {
            ctx.delta.note_full_hit(calls.len() as u64);
            return Ok((*r).clone());
        }
    }

    let _span = registry.span("sim.run_prtr");
    let j = &ctx.journal;
    let tid_host = Lane::Host.chrome_tid();
    let tid_cfg = Lane::ConfigPort.chrome_tid();
    let jrun = j.enter("sim.run_prtr", 0, tid_host);
    let m_calls = registry.counter("sim.prtr.calls");
    let m_hits = registry.counter("sim.prtr.hits");
    let m_misses = registry.counter("sim.prtr.misses");
    let m_configs = registry.counter("sim.prtr.partial_configs");
    let m_latency = registry.histogram("sim.prtr.call_latency_s");
    let m_icap_transfers = registry.counter("sim.icap.transfers");
    let m_icap_bytes = registry.counter("sim.icap.bytes");

    let t_decision = SimDuration::from_secs_f64(node.decision_latency_s);
    let t_control = SimDuration::from_secs_f64(node.control_overhead_s);
    let t_prtr = node.icap.transfer_duration(node.prr_bitstream_bytes);

    // Armed fault plan: replay the recovery state over the miss stream
    // to pre-derive every call's fate. The scheduler that produced
    // `calls` ran the identical [`FaultState`] over the identical
    // `(call index, slot)` stream, so escalations and blacklisting stay
    // in lockstep without any fate passing. Disarmed plans take the
    // exact fault-free path.
    let plan = plan_eff;
    let fates: Vec<CallFate> = plan
        .map(|p| {
            let mut state = FaultState::new(*p, node.n_prrs);
            calls
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if c.hit {
                        CallFate::clean_partial()
                    } else {
                        state.on_miss(i as u64, c.slot)
                    }
                })
                .collect()
        })
        .unwrap_or_default();
    let fm = plan.map(|_| FaultMetrics::new(registry, "sim.prtr"));

    // Salted keys confine steady-state jumps to fault-free stretches
    // (see `run_frtr_impl`).
    let keys: Vec<(PrtrKey, u64)> = if enable_jump {
        calls
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let salt = match plan {
                    Some(_) if !fates[i].is_clean() => i as u64 + 1,
                    _ => 0,
                };
                (
                    PrtrKey {
                        name: c.task.name,
                        bytes_in: c.task.bytes_in,
                        bytes_out: c.task.bytes_out,
                        hit: c.hit,
                        slot: c.slot,
                    },
                    salt,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut seen: HashMap<((PrtrKey, u64), RelState), SeenAt> = HashMap::new();
    let mut n_dropped = 0u64;

    let mut timeline = Timeline::default();
    let mut labels = LabelCache::default();
    let mut timings: Vec<CallTiming> = Vec::with_capacity(calls.len());
    let mut n_config = 0u64;
    let mut icap_free = SimTime::ZERO;
    // Execution window of the previous call.
    let mut prev: Option<(SimTime, SimTime, u64)> = None; // (exec_start, exec_end, bytes_in)

    let mut i = 0usize;
    while i < calls.len() {
        // The recurrence's carry-over state is relative to prev_start
        // (cold calls carry no state and never participate).
        if enable_jump {
            if let Some((prev_start, prev_end, prev_bytes_in)) = prev {
                let rel = RelState {
                    exec_ns: (prev_end - prev_start).0,
                    icap_ns: (icap_free.max(prev_start) - prev_start).0,
                    prev_bytes_in,
                };
                if let Some(at) = seen.get(&(keys[i], rel)).copied() {
                    let p = i - at.i0;
                    let m = verified_periods(&keys, at.i0, p, i);
                    if m >= 1 {
                        let delta = prev_start.0 - at.anchor.0;
                        let pattern = timeline.split_off_events(at.items_marker);
                        timeline.push_repeat(pattern, m + 1, SimDuration(delta));
                        // The block's per-call marginal latencies are
                        // shift-invariant; its first call's predecessor is
                        // timings[marker - 1] (i0 ≥ 1 always holds here).
                        let latencies: Vec<f64> = (at.timings_marker..timings.len())
                            .map(|t| (timings[t].exec_end - timings[t - 1].exec_end).as_secs_f64())
                            .collect();
                        let block = timings[at.timings_marker..].to_vec();
                        let block_hits = calls[at.i0..i].iter().filter(|c| c.hit).count() as u64;
                        let block_cfgs =
                            block.iter().filter(|t| t.config_start.is_some()).count() as u64;
                        for k in 1..=m {
                            timings.extend(block.iter().map(|t| t.shifted(k * delta)));
                        }
                        let jumped = m * p as u64;
                        m_calls.add(jumped);
                        m_hits.add(m * block_hits);
                        m_misses.add(m * (p as u64 - block_hits));
                        m_configs.add(m * block_cfgs);
                        m_icap_transfers.add(m * block_cfgs);
                        m_icap_bytes.add(m * block_cfgs * node.prr_bitstream_bytes);
                        m_latency.record_cycle(&latencies, m);
                        n_config += m * block_cfgs;
                        j.replay_cycle(at.jmark, m, delta);
                        let shift = m * delta;
                        prev = Some((
                            SimTime(prev_start.0 + shift),
                            SimTime(prev_end.0 + shift),
                            prev_bytes_in,
                        ));
                        icap_free = SimTime(icap_free.max(prev_start).0 + shift);
                        i += m as usize * p;
                        seen.clear();
                        continue;
                    }
                }
                seen.insert(
                    (keys[i], rel),
                    SeenAt {
                        i0: i,
                        anchor: prev_start,
                        items_marker: timeline.n_items(),
                        timings_marker: timings.len(),
                        jmark: j.mark(),
                    },
                );
            }
        }

        let call = &calls[i];

        // Faulty miss: decision timing mirrors the fault-free miss
        // arms, then the recovery chain replaces the single partial
        // transfer. Clean-fated calls (all hits included) fall through
        // to the unchanged fault-free body and stay jumpable.
        if let Some(p) = plan {
            let fate = fates[i];
            if !fate.is_clean() {
                let decision_start = prev.map_or(SimTime::ZERO, |(_, pe, _)| pe);
                let decision_end = decision_start + t_decision;
                let jcall = j.open(call.task.name.as_str(), jrun, decision_start.0, tid_host);
                let jdec = j.event("decide", jcall, decision_start.0, tid_host);
                let mut jchain: PendingLink = jdec.map(|d| (d, "hide"));
                timeline.push(
                    Lane::Host,
                    EventKind::Decision,
                    labels.get(L_DEC, call.task.name, 0),
                    decision_start,
                    decision_end,
                );
                let earliest = match prev {
                    None => decision_end,
                    Some((prev_start, _, prev_bytes_in)) => {
                        if node.config_waits_for_data_input {
                            prev_start + node.data_in_duration(prev_bytes_in)
                        } else {
                            prev_start
                        }
                    }
                };
                let cs = earliest.max(icap_free);
                let ce = push_partial_fault_chain(
                    node,
                    &mut timeline,
                    &mut labels,
                    p,
                    &fate,
                    i as u64,
                    call.task.name,
                    call.slot,
                    cs,
                    ctx,
                    jcall,
                    &mut jchain,
                )?;
                icap_free = ce;
                if let Some(fm) = &fm {
                    fm.record(&fate, (ce - cs).as_secs_f64() - t_prtr.as_secs_f64());
                }
                let ready = decision_end.max(ce);
                m_calls.inc();
                m_misses.inc();
                if !fate.dropped {
                    n_config += 1;
                    if !(fate.escalated || fate.forced_full) {
                        m_configs.inc();
                    }
                } else {
                    n_dropped += 1;
                }
                let prev_end_t = prev.map_or(SimTime::ZERO, |(_, end, _)| end);
                if fate.dropped {
                    // The call never ran: zero-length execution window
                    // at its ready point, no control transfer, no data.
                    timings.push(CallTiming {
                        name: call.task.name,
                        hit: false,
                        config_start: Some(cs),
                        config_end: Some(ce),
                        exec_start: ready,
                        exec_end: ready,
                    });
                    m_latency.record((ready - prev_end_t).as_secs_f64());
                    j.close(jcall, ready.0);
                    prev = Some((ready, ready, 0));
                } else {
                    let control_end = ready + t_control;
                    timeline.push(
                        Lane::Host,
                        EventKind::Control,
                        labels.get(L_CTL, call.task.name, 0),
                        ready,
                        control_end,
                    );
                    let exec_start = control_end;
                    let exec_end =
                        exec_start + SimDuration::from_secs_f64(call.task.task_time_s(node));
                    push_exec_events(
                        &mut timeline,
                        &mut labels,
                        node,
                        &call.task,
                        call.slot,
                        exec_start,
                        exec_end,
                    );
                    let jexec = j.event(
                        "execute",
                        jcall,
                        exec_start.0,
                        Lane::Prr(call.slot).chrome_tid(),
                    );
                    j.flow(jchain.map(|(id, _)| id), jexec, "activate");
                    timings.push(CallTiming {
                        name: call.task.name,
                        hit: false,
                        config_start: Some(cs),
                        config_end: Some(ce),
                        exec_start,
                        exec_end,
                    });
                    m_latency.record((exec_end - prev_end_t).as_secs_f64());
                    j.close(jcall, exec_end.0);
                    prev = Some((exec_start, exec_end, call.task.bytes_in));
                }
                i += 1;
                continue;
            }
        }

        // The decision's start anchor is arm-dependent; the journal's
        // call span opens there (it is the call's first action).
        let decision_anchor = match (call.hit, prev) {
            (_, None) => SimTime::ZERO,
            (true, Some((prev_start, _, _))) => prev_start,
            (false, Some((_, prev_end, _))) => prev_end,
        };
        let jcall = j.open(call.task.name.as_str(), jrun, decision_anchor.0, tid_host);
        let jdec = j.event("decide", jcall, decision_anchor.0, tid_host);

        let (config_start, config_end, ready) = match (call.hit, prev) {
            // Cold start (first call): decision, then configuration (on a
            // miss), strictly serial — nothing exists to overlap with.
            (hit, None) => {
                let decision_end = SimTime::ZERO + t_decision;
                timeline.push(
                    Lane::Host,
                    EventKind::Decision,
                    labels.get(L_DEC, call.task.name, 0),
                    SimTime::ZERO,
                    decision_end,
                );
                if hit {
                    (None, None, decision_end)
                } else {
                    let cs = decision_end.max(icap_free);
                    let ce = cs + t_prtr;
                    icap_free = ce;
                    n_config += 1;
                    (Some(cs), Some(ce), ce)
                }
            }
            // Hit: the decision overlaps the previous execution.
            (true, Some((prev_start, prev_end, _))) => {
                let decision_end = prev_start + t_decision;
                timeline.push(
                    Lane::Host,
                    EventKind::Decision,
                    labels.get(L_DEC, call.task.name, 0),
                    prev_start,
                    decision_end,
                );
                (None, None, prev_end.max(decision_end))
            }
            // Miss: the configuration streams while the previous task runs;
            // the decision check runs after it completes (equation (3)'s
            // max(T_task + T_decision, T_PRTR) term).
            (false, Some((prev_start, prev_end, prev_bytes_in))) => {
                let decision_end = prev_end + t_decision;
                timeline.push(
                    Lane::Host,
                    EventKind::Decision,
                    labels.get(L_DEC, call.task.name, 0),
                    prev_end,
                    decision_end,
                );
                let earliest = if node.config_waits_for_data_input {
                    prev_start + node.data_in_duration(prev_bytes_in)
                } else {
                    prev_start
                };
                let cs = earliest.max(icap_free);
                let ce = cs + t_prtr;
                icap_free = ce;
                n_config += 1;
                (Some(cs), Some(ce), decision_end.max(ce))
            }
        };

        let jcfg = match config_start {
            Some(cs) => {
                let c = j.event("configure", jcall, cs.0, tid_cfg);
                j.flow(jdec, c, "hide");
                c
            }
            None => None,
        };
        if let (Some(cs), Some(ce)) = (config_start, config_end) {
            timeline.push(
                Lane::ConfigPort,
                EventKind::PartialConfig,
                labels.get(L_CFG, call.task.name, call.slot),
                cs,
                ce,
            );
        }

        let control_end = ready + t_control;
        timeline.push(
            Lane::Host,
            EventKind::Control,
            labels.get(L_CTL, call.task.name, 0),
            ready,
            control_end,
        );
        let exec_start = control_end;
        let exec_end = exec_start + SimDuration::from_secs_f64(call.task.task_time_s(node));
        push_exec_events(
            &mut timeline,
            &mut labels,
            node,
            &call.task,
            call.slot,
            exec_start,
            exec_end,
        );
        let jexec = j.event(
            "execute",
            jcall,
            exec_start.0,
            Lane::Prr(call.slot).chrome_tid(),
        );
        if jcfg.is_some() {
            j.flow(jcfg, jexec, "activate");
        } else {
            j.flow(jdec, jexec, "hit");
        }
        j.close(jcall, exec_end.0);

        timings.push(CallTiming {
            name: call.task.name,
            hit: call.hit,
            config_start,
            config_end,
            exec_start,
            exec_end,
        });

        m_calls.inc();
        if call.hit {
            m_hits.inc();
        } else {
            m_misses.inc();
        }
        if config_start.is_some() {
            m_configs.inc();
            m_icap_transfers.inc();
            m_icap_bytes.add(node.prr_bitstream_bytes);
        }
        // Marginal wall-clock cost of this call — in steady state this
        // is the model's per-call increment, e.g.
        // max(T_task + T_decision, T_PRTR) + T_control on a miss.
        let prev_end = prev.map_or(SimTime::ZERO, |(_, end, _)| end);
        m_latency.record((exec_end - prev_end).as_secs_f64());

        prev = Some((exec_start, exec_end, call.task.bytes_in));
        i += 1;
    }

    let total = timings.last().expect("non-empty").exec_end - SimTime::ZERO;
    j.exit(jrun, timings.last().expect("non-empty").exec_end.0);
    timeline.record_metrics(registry, "sim.prtr");
    let report = ExecutionReport {
        total,
        calls: timings,
        timeline,
        n_config,
        n_dropped,
    };
    if let Some(key) = memo_key {
        crate::delta::store(&ctx.delta, key, &report);
        if replayable {
            ctx.delta.note_miss(calls.len() as u64);
        }
    }
    Ok(report)
}

/// Records the execution window plus its streaming data transfers.
fn push_exec_events(
    timeline: &mut Timeline,
    labels: &mut LabelCache,
    node: &NodeConfig,
    call: &TaskCall,
    slot: usize,
    exec_start: SimTime,
    exec_end: SimTime,
) {
    timeline.push(
        Lane::Prr(slot),
        EventKind::Exec,
        call.name,
        exec_start,
        exec_end,
    );
    let t_in = node.data_in_duration(call.bytes_in);
    timeline.push(
        Lane::LinkIn,
        EventKind::DataIn,
        labels.get(L_IN, call.name, 0),
        exec_start,
        exec_start + t_in,
    );
    let t_out = node.data_in_duration(call.bytes_out);
    // Output streams at the tail of the execution window.
    let out_start = SimTime(exec_end.0.saturating_sub(t_out.0));
    timeline.push(
        Lane::LinkOut,
        EventKind::DataOut,
        labels.get(L_OUT, call.name, 0),
        out_start.max(exec_start),
        exec_end,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hprc_fpga::floorplan::Floorplan;

    fn node() -> NodeConfig {
        NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr())
    }

    fn dctx() -> ExecCtx {
        ExecCtx::default()
    }

    fn uniform_prtr_calls(
        node: &NodeConfig,
        t_task: f64,
        n: usize,
        all_miss: bool,
    ) -> Vec<PrtrCall> {
        (0..n)
            .map(|i| PrtrCall {
                task: TaskCall::with_task_time(format!("task{}", i % 3), node, t_task),
                hit: !all_miss && i > 0,
                slot: i % node.n_prrs,
            })
            .collect()
    }

    #[test]
    fn frtr_total_matches_equation_1_exactly() {
        let node = node();
        let t_task = 0.050;
        let n = 20;
        let calls: Vec<TaskCall> = (0..n)
            .map(|i| TaskCall::with_task_time(format!("t{i}"), &node, t_task))
            .collect();
        let report = run_frtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task_time_s(&node);
        let expected = n as f64 * (node.t_frtr_s() + node.control_overhead_s + t_task_actual);
        assert!(
            (report.total_s() - expected).abs() / expected < 1e-9,
            "sim {} vs eq(1) {}",
            report.total_s(),
            expected
        );
        assert_eq!(report.n_config, n as u64);
    }

    #[test]
    fn prtr_all_miss_long_tasks_hide_configuration() {
        // T_task >> T_PRTR: steady-state increment is T_task + T_control.
        let node = node();
        let t_task = 0.5; // 500 ms >> 19.77 ms
        let calls = uniform_prtr_calls(&node, t_task, 10, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task.task_time_s(&node);
        // First call pays its full config; the remaining 9 only task+control.
        let expected = node.t_prtr_s() + 10.0 * (node.control_overhead_s + t_task_actual);
        assert!(
            (report.total_s() - expected).abs() / expected < 1e-6,
            "sim {} vs {}",
            report.total_s(),
            expected
        );
        assert_eq!(report.n_config, 10);
    }

    #[test]
    fn prtr_all_miss_short_tasks_are_config_bound() {
        // T_task << T_PRTR: steady-state increment is T_PRTR + T_control.
        let node = node();
        let t_task = 0.001; // 1 ms << 19.77 ms
        let n = 50;
        let calls = uniform_prtr_calls(&node, t_task, n, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task.task_time_s(&node);
        // Steady state: each call adds max(T_task, T_PRTR) = T_PRTR
        // (config for call i+1 starts at exec_start_i and T_PRTR > T_task
        // + control, so ICAP is the bottleneck); plus the tail task.
        let expected = node.t_prtr_s()
            + (n - 1) as f64 * node.t_prtr_s().max(t_task_actual + node.control_overhead_s)
            + n as f64 * node.control_overhead_s
            + t_task_actual;
        let rel = (report.total_s() - expected).abs() / expected;
        assert!(
            rel < 0.02,
            "sim {} vs {} (rel {rel})",
            report.total_s(),
            expected
        );
    }

    #[test]
    fn prtr_hits_skip_configuration() {
        let node = node();
        let calls = uniform_prtr_calls(&node, 0.05, 10, false);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        // Only the first (cold) call configures.
        assert_eq!(report.n_config, 1);
        let t_task_actual = calls[0].task.task_time_s(&node);
        let expected = node.t_prtr_s() + 10.0 * (node.control_overhead_s + t_task_actual);
        assert!((report.total_s() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn prtr_beats_frtr_for_short_tasks() {
        let node = node();
        let t_task = node.t_prtr_s(); // the peak-speedup operating point
        let n = 100;
        let prtr_calls = uniform_prtr_calls(&node, t_task, n, true);
        let frtr_calls: Vec<TaskCall> = prtr_calls.iter().map(|c| c.task).collect();
        let frtr = run_frtr(&node, &frtr_calls, &dctx()).unwrap();
        let prtr = run_prtr(&node, &prtr_calls, &dctx()).unwrap();
        let speedup = frtr.total_s() / prtr.total_s();
        // The paper's "up to 87x" on the measured dual-PRR layout.
        assert!(speedup > 75.0 && speedup < 90.0, "speedup = {speedup}");
    }

    #[test]
    fn shared_channel_ablation_slows_configuration() {
        let mut node = node();
        let calls = uniform_prtr_calls(&node, node.t_prtr_s(), 50, true);
        let fast = run_prtr(&node, &calls, &dctx()).unwrap();
        node.config_waits_for_data_input = true;
        let slow = run_prtr(&node, &calls, &dctx()).unwrap();
        assert!(slow.total_s() > fast.total_s());
    }

    #[test]
    fn decision_latency_is_paid_once_plus_per_miss() {
        let mut node = node();
        node.decision_latency_s = 0.005;
        let t_task = 0.1;
        let n = 20;
        let calls = uniform_prtr_calls(&node, t_task, n, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task.task_time_s(&node);
        // Steady state (T_task + T_d > T_PRTR here): increment
        // max(T_task + T_d, T_PRTR) + T_control.
        let inc = (t_task_actual + 0.005).max(node.t_prtr_s()) + node.control_overhead_s;
        let first = 0.005 + node.t_prtr_s() + node.control_overhead_s + t_task_actual;
        let expected = first + (n - 1) as f64 * inc;
        let rel = (report.total_s() - expected).abs() / expected;
        assert!(rel < 1e-6, "sim {} vs {}", report.total_s(), expected);
    }

    #[test]
    fn empty_prtr_run_rejected() {
        assert!(run_prtr(&node(), &[], &dctx()).is_err());
        assert!(run_prtr_reference(&node(), &[], &dctx()).is_err());
    }

    #[test]
    fn bad_slot_rejected() {
        let node = node();
        let calls = vec![PrtrCall {
            task: TaskCall::symmetric("x", 1024),
            hit: false,
            slot: 99,
        }];
        assert!(run_prtr(&node, &calls, &dctx()).is_err());
    }

    #[test]
    fn instrumented_runs_are_timing_neutral_and_accounted() {
        let node = node();
        let calls = uniform_prtr_calls(&node, 0.05, 20, false);
        let plain = run_prtr(&node, &calls, &dctx()).unwrap();
        let ctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let traced = run_prtr(&node, &calls, &ctx).unwrap();
        assert_eq!(plain, traced, "instrumentation must not perturb timing");

        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.prtr.calls"], 20);
        assert_eq!(snap.counters["sim.prtr.hits"], 19);
        assert_eq!(snap.counters["sim.prtr.misses"], 1);
        assert_eq!(snap.counters["sim.prtr.partial_configs"], traced.n_config);
        assert_eq!(
            snap.counters["sim.icap.bytes"],
            traced.n_config * node.prr_bitstream_bytes
        );
        assert_eq!(snap.histograms["sim.prtr.call_latency_s"].count, 20);
        // Lane-busy gauges mirror the timeline.
        let busy = traced.timeline.lane_busy_s(Lane::ConfigPort);
        assert!((snap.gauges["sim.prtr.lane_busy_s.config"] - busy).abs() < 1e-12);
        let util = busy / traced.total_s();
        assert!((snap.gauges["sim.prtr.config_port.utilization"] - util).abs() < 1e-9);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "sim.run_prtr");
    }

    #[test]
    fn frtr_instrumentation_counts_api_calls() {
        let node = node();
        let calls: Vec<TaskCall> = (0..4)
            .map(|i| TaskCall::with_task_time(format!("t{i}"), &node, 0.01))
            .collect();
        let ctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let report = run_frtr(&node, &calls, &ctx).unwrap();
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.frtr.calls"], 4);
        assert_eq!(snap.counters["sim.frtr.full_configs"], 4);
        assert_eq!(snap.counters["sim.cray_api.calls"], 4);
        assert!(!snap.counters.contains_key("sim.cray_api.rejections"));
        assert!(snap.gauges["sim.frtr.makespan_s"] > 0.0);
        assert_eq!(report.n_config, 4);
    }

    #[test]
    fn timeline_records_all_activity_kinds() {
        let node = node();
        let calls = uniform_prtr_calls(&node, 0.05, 5, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let text = report.timeline.render_text(80);
        assert!(text.contains('P'), "partial configs:\n{text}");
        assert!(text.contains('X'), "executions:\n{text}");
        assert!(report.timeline.lane_busy_s(Lane::ConfigPort) > 0.0);
    }

    /// Checks a fast-path report against its per-call oracle: totals,
    /// per-call timings, config counts, expanded timelines, and
    /// registry snapshots must all agree exactly.
    fn assert_reports_equivalent(
        fast: &ExecutionReport,
        reference: &ExecutionReport,
        fast_snap: &hprc_obs::Snapshot,
        ref_snap: &hprc_obs::Snapshot,
    ) {
        assert_eq!(fast.total, reference.total);
        assert_eq!(fast.n_config, reference.n_config);
        assert_eq!(fast.calls, reference.calls);
        let a: Vec<_> = fast.timeline.iter().collect();
        let b: Vec<_> = reference.timeline.iter().collect();
        assert_eq!(a, b, "expanded timelines must match event-for-event");
        assert_eq!(fast.timeline.len(), reference.timeline.len());
        assert_eq!(fast_snap.counters, ref_snap.counters);
        assert_eq!(fast_snap.histograms, ref_snap.histograms);
        use serde::Serialize;
        assert_eq!(
            fast_snap.to_json_value()["gauges"].to_string(),
            ref_snap.to_json_value()["gauges"].to_string()
        );
    }

    #[test]
    fn prtr_fast_path_matches_reference_and_compresses() {
        let node = node();
        for all_miss in [false, true] {
            let calls = uniform_prtr_calls(&node, 0.01, 240, all_miss);
            let fctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
            let rctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
            let fast = run_prtr(&node, &calls, &fctx).unwrap();
            let reference = run_prtr_reference(&node, &calls, &rctx).unwrap();
            assert_reports_equivalent(
                &fast,
                &reference,
                &fctx.registry.snapshot(),
                &rctx.registry.snapshot(),
            );
            // The periodic steady state must actually compress: far
            // fewer stored items than expanded events.
            assert!(
                fast.timeline.n_items() < 100,
                "all_miss={all_miss}: {} items for {} events",
                fast.timeline.n_items(),
                fast.timeline.len()
            );
            assert_eq!(fast.timeline.len(), reference.timeline.len());
            assert!(reference.timeline.n_items() as u64 == reference.timeline.len());
        }
    }

    #[test]
    fn frtr_fast_path_matches_reference_and_compresses() {
        let node = node();
        let calls: Vec<TaskCall> = (0..120)
            .map(|i| TaskCall::with_task_time(format!("t{}", i % 3), &node, 0.02))
            .collect();
        let fctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let rctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let fast = run_frtr(&node, &calls, &fctx).unwrap();
        let reference = run_frtr_reference(&node, &calls, &rctx).unwrap();
        assert_reports_equivalent(
            &fast,
            &reference,
            &fctx.registry.snapshot(),
            &rctx.registry.snapshot(),
        );
        assert!(
            fast.timeline.n_items() < 60,
            "{} items for {} events",
            fast.timeline.n_items(),
            fast.timeline.len()
        );
    }

    fn armed_plan(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan::new(
            hprc_fault::FaultSpec::uniform(rate),
            hprc_fault::RecoveryPolicy::default(),
            seed,
        )
    }

    #[test]
    fn disarmed_faulty_runs_are_identical_to_clean_runs() {
        let node = node();
        let plan = FaultPlan::disarmed();
        let calls = uniform_prtr_calls(&node, 0.01, 50, true);
        let cctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let fctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let clean = run_prtr(&node, &calls, &cctx).unwrap();
        let faulty = run_prtr_faulty(&node, &calls, &plan, &fctx).unwrap();
        assert_eq!(clean, faulty);
        assert_reports_equivalent(
            &faulty,
            &clean,
            &fctx.registry.snapshot(),
            &cctx.registry.snapshot(),
        );

        let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
        let clean = run_frtr(&node, &frtr_calls, &dctx()).unwrap();
        let faulty = run_frtr_faulty(&node, &frtr_calls, &plan, &dctx()).unwrap();
        assert_eq!(clean, faulty);
    }

    #[test]
    fn faulty_prtr_fast_path_matches_reference() {
        let node = node();
        let plan = armed_plan(0.08, 42);
        let calls = uniform_prtr_calls(&node, 0.01, 240, true);
        let fctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let rctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let fast = run_prtr_faulty(&node, &calls, &plan, &fctx).unwrap();
        let reference = run_prtr_faulty_reference(&node, &calls, &plan, &rctx).unwrap();
        assert_reports_equivalent(
            &fast,
            &reference,
            &fctx.registry.snapshot(),
            &rctx.registry.snapshot(),
        );
        // Faults happened and recovery is visible in the timeline.
        let snap = fctx.registry.snapshot();
        assert!(snap.counters["sim.prtr.fault.injected"] > 0);
        assert!(fast.timeline.iter().any(|e| e.kind == EventKind::Recovery));
        // The clean stretches between faults must still jump.
        assert!(
            fast.timeline.n_items() < reference.timeline.n_items(),
            "{} vs {} items",
            fast.timeline.n_items(),
            reference.timeline.n_items()
        );
    }

    #[test]
    fn faulty_frtr_fast_path_matches_reference() {
        let node = node();
        let plan = armed_plan(0.1, 7);
        let calls: Vec<TaskCall> = (0..160)
            .map(|i| TaskCall::with_task_time(format!("t{}", i % 2), &node, 0.02))
            .collect();
        let fctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let rctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let fast = run_frtr_faulty(&node, &calls, &plan, &fctx).unwrap();
        let reference = run_frtr_faulty_reference(&node, &calls, &plan, &rctx).unwrap();
        assert_reports_equivalent(
            &fast,
            &reference,
            &fctx.registry.snapshot(),
            &rctx.registry.snapshot(),
        );
        assert!(fast.timeline.n_items() < reference.timeline.n_items());
    }

    #[test]
    fn faulty_runs_slow_down_and_drop_monotonically() {
        let node = node();
        let calls = uniform_prtr_calls(&node, 0.01, 120, true);
        let mut prev_total = 0.0;
        for rate in [0.0, 0.05, 0.2, 0.6] {
            let plan = armed_plan(rate, 1234);
            let report = run_prtr_faulty(&node, &calls, &plan, &dctx()).unwrap();
            assert!(
                report.total_s() >= prev_total,
                "total must grow with fault rate (rate {rate})"
            );
            prev_total = report.total_s();
            assert_eq!(report.calls.len(), 120);
            assert!(report.n_config + report.n_dropped <= 120);
        }
    }

    #[test]
    fn certain_faults_drop_every_miss_without_panicking() {
        let node = node();
        let spec = hprc_fault::FaultSpec {
            p_icap_timeout: 1.0,
            p_api_transfer: 1.0,
            ..hprc_fault::FaultSpec::default()
        };
        let plan = FaultPlan::new(spec, hprc_fault::RecoveryPolicy::default(), 9);
        let calls = uniform_prtr_calls(&node, 0.01, 30, true);
        let ctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let report = run_prtr_faulty(&node, &calls, &plan, &ctx).unwrap();
        assert_eq!(report.n_dropped, 30);
        assert_eq!(report.n_config, 0);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.prtr.fault.drops"], 30);
        // Two escalations blacklist each PRR; later misses go forced-full.
        assert!(snap.counters["sim.prtr.fault.forced_full"] > 0);
        assert!(snap.counters["sim.prtr.fault.escalations"] >= 4);
    }

    #[test]
    fn fast_path_rearms_across_aperiodic_breaks() {
        // Two periodic runs separated by a one-off call with a unique
        // name: the detector must jump in both runs.
        let node = node();
        let mut calls = uniform_prtr_calls(&node, 0.01, 60, true);
        calls[30] = PrtrCall {
            task: TaskCall::with_task_time("oddball", &node, 0.033),
            hit: false,
            slot: 0,
        };
        let fast = run_prtr(&node, &calls, &dctx()).unwrap();
        let reference = run_prtr_reference(&node, &calls, &dctx()).unwrap();
        assert_eq!(fast.total, reference.total);
        assert_eq!(fast.calls, reference.calls);
        let a: Vec<_> = fast.timeline.iter().collect();
        let b: Vec<_> = reference.timeline.iter().collect();
        assert_eq!(a, b);
        assert!(fast.timeline.n_items() < reference.timeline.n_items());
    }
}
