//! FRTR and PRTR executors: drive a sequence of task calls through the
//! simulated node and measure the total execution time the analytical
//! model predicts.
//!
//! **FRTR** (Figure 3): every call fully reconfigures the device through
//! the vendor API — nothing overlaps, because a full configuration resets
//! the fabric. Per call: `T_FRTR + T_control + T_task`, serial.
//!
//! **PRTR** (Figure 4): the runtime overlaps the next call's partial
//! reconfiguration with the current call's execution, exactly as
//! equation (3) accounts it:
//!
//! * *miss* (Figure 4(a)): the next configuration starts streaming through
//!   the ICAP when the current task starts; the decision check runs when
//!   the task ends. The call becomes ready at
//!   `max(exec_end_prev + T_decision, config_end)` — contributing
//!   `max(T_task + T_decision, T_PRTR)` per call in steady state;
//! * *hit* (Figure 4(b)): the decision overlaps execution; ready at
//!   `max(exec_end_prev, decision_end)` — contributing
//!   `max(T_task, T_decision)`.
//!
//! Every call then pays `T_control` before executing. The model's single
//! leading `X_decision` appears as the first call's un-overlapped decision.
//! The simulator additionally serializes configurations on the single ICAP
//! and (optionally) delays them until the previous call's input data has
//! drained from the shared host link — second-order effects equation (3)
//! ignores, which is precisely what makes simulator-vs-model validation
//! meaningful.

use hprc_ctx::ExecCtx;
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::node::NodeConfig;
use crate::task::{PrtrCall, TaskCall};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventKind, Lane, Timeline};

/// Timing of one executed call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallTiming {
    /// Task name.
    pub name: String,
    /// Whether the call hit (PRTR only; always false under FRTR).
    pub hit: bool,
    /// When its (re-)configuration started (if one was needed).
    pub config_start: Option<SimTime>,
    /// When its (re-)configuration finished.
    pub config_end: Option<SimTime>,
    /// When execution started (after transfer of control).
    pub exec_start: SimTime,
    /// When execution finished.
    pub exec_end: SimTime,
}

/// Result of executing a call sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Wall-clock total, from t = 0 to the last task's completion.
    pub total: SimDuration,
    /// Per-call timings.
    pub calls: Vec<CallTiming>,
    /// Full event timeline (renders the Figures 3/4 profiles).
    pub timeline: Timeline,
    /// Number of (re-)configurations performed.
    pub n_config: u64,
}

impl ExecutionReport {
    /// Total in seconds.
    pub fn total_s(&self) -> f64 {
        self.total.as_secs_f64()
    }
}

/// Executes `calls` under **FRTR**: full reconfiguration before every call.
///
/// Metrics go to `ctx.registry` ([`ExecCtx::default`] records nothing):
/// call/config counters, a per-call latency histogram, and the
/// timeline's per-lane busy gauges under the `sim.frtr` prefix.
///
/// # Errors
///
/// Propagates vendor-API rejections (impossible for well-formed full
/// bitstreams).
pub fn run_frtr(
    node: &NodeConfig,
    calls: &[TaskCall],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    let registry = &ctx.registry;
    let _span = registry.span("sim.run_frtr");
    let m_calls = registry.counter("sim.frtr.calls");
    let m_configs = registry.counter("sim.frtr.full_configs");
    let m_latency = registry.histogram("sim.frtr.call_latency_s");

    let mut now = SimTime::ZERO;
    let mut timeline = Timeline::default();
    let mut timings = Vec::with_capacity(calls.len());
    let full_bytes = node.full_config.full_bitstream_bytes;
    for call in calls {
        let config_start = now;
        // A full bitstream resets the device, so DONE is irrelevant here.
        let d = node.full_config.configure(full_bytes, false, false, ctx)?;
        let config_end = config_start + d;
        timeline.push(
            Lane::ConfigPort,
            EventKind::FullConfig,
            format!("full:{}", call.name),
            config_start,
            config_end,
        );
        let control_end = config_end + SimDuration::from_secs_f64(node.control_overhead_s);
        timeline.push(
            Lane::Host,
            EventKind::Control,
            format!("ctl:{}", call.name),
            config_end,
            control_end,
        );
        let exec_start = control_end;
        let exec_end = exec_start + SimDuration::from_secs_f64(call.task_time_s(node));
        push_exec_events(&mut timeline, node, call, 0, exec_start, exec_end);
        timings.push(CallTiming {
            name: call.name.clone(),
            hit: false,
            config_start: Some(config_start),
            config_end: Some(config_end),
            exec_start,
            exec_end,
        });
        m_calls.inc();
        m_configs.inc();
        m_latency.record((exec_end - config_start).as_secs_f64());
        now = exec_end;
    }
    timeline.record_metrics(registry, "sim.frtr");
    Ok(ExecutionReport {
        total: now - SimTime::ZERO,
        n_config: calls.len() as u64,
        calls: timings,
        timeline,
    })
}

/// Executes `calls` under **PRTR** with the per-call hit/miss outcomes and
/// slot assignments supplied by a configuration-caching simulation.
///
/// Metrics go to `ctx.registry` ([`ExecCtx::default`] records nothing):
/// hit/miss/config counters, a per-call latency histogram, ICAP transfer
/// accounting, and the timeline's per-lane busy gauges under the
/// `sim.prtr` prefix.
///
/// # Errors
///
/// [`SimError::InvalidRun`] when a slot index exceeds the node's PRR count
/// or the call list is empty.
pub fn run_prtr(
    node: &NodeConfig,
    calls: &[PrtrCall],
    ctx: &ExecCtx,
) -> Result<ExecutionReport, SimError> {
    let registry = &ctx.registry;
    if calls.is_empty() {
        return Err(SimError::InvalidRun("empty call sequence".into()));
    }
    if let Some(bad) = calls.iter().find(|c| c.slot >= node.n_prrs) {
        return Err(SimError::InvalidRun(format!(
            "slot {} out of range for {} PRRs",
            bad.slot, node.n_prrs
        )));
    }

    let _span = registry.span("sim.run_prtr");
    let m_calls = registry.counter("sim.prtr.calls");
    let m_hits = registry.counter("sim.prtr.hits");
    let m_misses = registry.counter("sim.prtr.misses");
    let m_configs = registry.counter("sim.prtr.partial_configs");
    let m_latency = registry.histogram("sim.prtr.call_latency_s");
    let m_icap_transfers = registry.counter("sim.icap.transfers");
    let m_icap_bytes = registry.counter("sim.icap.bytes");

    let t_decision = SimDuration::from_secs_f64(node.decision_latency_s);
    let t_control = SimDuration::from_secs_f64(node.control_overhead_s);
    let t_prtr = node.icap.transfer_duration(node.prr_bitstream_bytes);

    let mut timeline = Timeline::default();
    let mut timings = Vec::with_capacity(calls.len());
    let mut n_config = 0u64;
    let mut icap_free = SimTime::ZERO;
    // Execution window of the previous call.
    let mut prev: Option<(SimTime, SimTime, u64)> = None; // (exec_start, exec_end, bytes_in)

    for call in calls {
        let (config_start, config_end, ready) = match (call.hit, prev) {
            // Cold start (first call): decision, then configuration (on a
            // miss), strictly serial — nothing exists to overlap with.
            (hit, None) => {
                let decision_end = SimTime::ZERO + t_decision;
                timeline.push(
                    Lane::Host,
                    EventKind::Decision,
                    format!("dec:{}", call.task.name),
                    SimTime::ZERO,
                    decision_end,
                );
                if hit {
                    (None, None, decision_end)
                } else {
                    let cs = decision_end.max(icap_free);
                    let ce = cs + t_prtr;
                    icap_free = ce;
                    n_config += 1;
                    (Some(cs), Some(ce), ce)
                }
            }
            // Hit: the decision overlaps the previous execution.
            (true, Some((prev_start, prev_end, _))) => {
                let decision_end = prev_start + t_decision;
                timeline.push(
                    Lane::Host,
                    EventKind::Decision,
                    format!("dec:{}", call.task.name),
                    prev_start,
                    decision_end,
                );
                (None, None, prev_end.max(decision_end))
            }
            // Miss: the configuration streams while the previous task runs;
            // the decision check runs after it completes (equation (3)'s
            // max(T_task + T_decision, T_PRTR) term).
            (false, Some((prev_start, prev_end, prev_bytes_in))) => {
                let decision_end = prev_end + t_decision;
                timeline.push(
                    Lane::Host,
                    EventKind::Decision,
                    format!("dec:{}", call.task.name),
                    prev_end,
                    decision_end,
                );
                let earliest = if node.config_waits_for_data_input {
                    prev_start + node.data_in_duration(prev_bytes_in)
                } else {
                    prev_start
                };
                let cs = earliest.max(icap_free);
                let ce = cs + t_prtr;
                icap_free = ce;
                n_config += 1;
                (Some(cs), Some(ce), decision_end.max(ce))
            }
        };

        if let (Some(cs), Some(ce)) = (config_start, config_end) {
            timeline.push(
                Lane::ConfigPort,
                EventKind::PartialConfig,
                format!("cfg:{}@PRR{}", call.task.name, call.slot),
                cs,
                ce,
            );
        }

        let control_end = ready + t_control;
        timeline.push(
            Lane::Host,
            EventKind::Control,
            format!("ctl:{}", call.task.name),
            ready,
            control_end,
        );
        let exec_start = control_end;
        let exec_end = exec_start + SimDuration::from_secs_f64(call.task.task_time_s(node));
        push_exec_events(
            &mut timeline,
            node,
            &call.task,
            call.slot,
            exec_start,
            exec_end,
        );

        timings.push(CallTiming {
            name: call.task.name.clone(),
            hit: call.hit,
            config_start,
            config_end,
            exec_start,
            exec_end,
        });

        m_calls.inc();
        if call.hit {
            m_hits.inc();
        } else {
            m_misses.inc();
        }
        if config_start.is_some() {
            m_configs.inc();
            m_icap_transfers.inc();
            m_icap_bytes.add(node.prr_bitstream_bytes);
        }
        // Marginal wall-clock cost of this call — in steady state this
        // is the model's per-call increment, e.g.
        // max(T_task + T_decision, T_PRTR) + T_control on a miss.
        let prev_end = prev.map_or(SimTime::ZERO, |(_, end, _)| end);
        m_latency.record((exec_end - prev_end).as_secs_f64());

        prev = Some((exec_start, exec_end, call.task.bytes_in));
    }

    timeline.record_metrics(registry, "sim.prtr");
    let total = timings.last().expect("non-empty").exec_end - SimTime::ZERO;
    Ok(ExecutionReport {
        total,
        calls: timings,
        timeline,
        n_config,
    })
}

/// Records the execution window plus its streaming data transfers.
fn push_exec_events(
    timeline: &mut Timeline,
    node: &NodeConfig,
    call: &TaskCall,
    slot: usize,
    exec_start: SimTime,
    exec_end: SimTime,
) {
    timeline.push(
        Lane::Prr(slot),
        EventKind::Exec,
        call.name.clone(),
        exec_start,
        exec_end,
    );
    let t_in = node.data_in_duration(call.bytes_in);
    timeline.push(
        Lane::LinkIn,
        EventKind::DataIn,
        format!("in:{}", call.name),
        exec_start,
        exec_start + t_in,
    );
    let t_out = node.data_in_duration(call.bytes_out);
    // Output streams at the tail of the execution window.
    let out_start = SimTime(exec_end.0.saturating_sub(t_out.0));
    timeline.push(
        Lane::LinkOut,
        EventKind::DataOut,
        format!("out:{}", call.name),
        out_start.max(exec_start),
        exec_end,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hprc_fpga::floorplan::Floorplan;

    fn node() -> NodeConfig {
        NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr())
    }

    fn dctx() -> ExecCtx {
        ExecCtx::default()
    }

    fn uniform_prtr_calls(
        node: &NodeConfig,
        t_task: f64,
        n: usize,
        all_miss: bool,
    ) -> Vec<PrtrCall> {
        (0..n)
            .map(|i| PrtrCall {
                task: TaskCall::with_task_time(format!("task{}", i % 3), node, t_task),
                hit: !all_miss && i > 0,
                slot: i % node.n_prrs,
            })
            .collect()
    }

    #[test]
    fn frtr_total_matches_equation_1_exactly() {
        let node = node();
        let t_task = 0.050;
        let n = 20;
        let calls: Vec<TaskCall> = (0..n)
            .map(|i| TaskCall::with_task_time(format!("t{i}"), &node, t_task))
            .collect();
        let report = run_frtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task_time_s(&node);
        let expected = n as f64 * (node.t_frtr_s() + node.control_overhead_s + t_task_actual);
        assert!(
            (report.total_s() - expected).abs() / expected < 1e-9,
            "sim {} vs eq(1) {}",
            report.total_s(),
            expected
        );
        assert_eq!(report.n_config, n as u64);
    }

    #[test]
    fn prtr_all_miss_long_tasks_hide_configuration() {
        // T_task >> T_PRTR: steady-state increment is T_task + T_control.
        let node = node();
        let t_task = 0.5; // 500 ms >> 19.77 ms
        let calls = uniform_prtr_calls(&node, t_task, 10, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task.task_time_s(&node);
        // First call pays its full config; the remaining 9 only task+control.
        let expected = node.t_prtr_s() + 10.0 * (node.control_overhead_s + t_task_actual);
        assert!(
            (report.total_s() - expected).abs() / expected < 1e-6,
            "sim {} vs {}",
            report.total_s(),
            expected
        );
        assert_eq!(report.n_config, 10);
    }

    #[test]
    fn prtr_all_miss_short_tasks_are_config_bound() {
        // T_task << T_PRTR: steady-state increment is T_PRTR + T_control.
        let node = node();
        let t_task = 0.001; // 1 ms << 19.77 ms
        let n = 50;
        let calls = uniform_prtr_calls(&node, t_task, n, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task.task_time_s(&node);
        // Steady state: each call adds max(T_task, T_PRTR) = T_PRTR
        // (config for call i+1 starts at exec_start_i and T_PRTR > T_task
        // + control, so ICAP is the bottleneck); plus the tail task.
        let expected = node.t_prtr_s()
            + (n - 1) as f64 * node.t_prtr_s().max(t_task_actual + node.control_overhead_s)
            + n as f64 * node.control_overhead_s
            + t_task_actual;
        let rel = (report.total_s() - expected).abs() / expected;
        assert!(
            rel < 0.02,
            "sim {} vs {} (rel {rel})",
            report.total_s(),
            expected
        );
    }

    #[test]
    fn prtr_hits_skip_configuration() {
        let node = node();
        let calls = uniform_prtr_calls(&node, 0.05, 10, false);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        // Only the first (cold) call configures.
        assert_eq!(report.n_config, 1);
        let t_task_actual = calls[0].task.task_time_s(&node);
        let expected = node.t_prtr_s() + 10.0 * (node.control_overhead_s + t_task_actual);
        assert!((report.total_s() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn prtr_beats_frtr_for_short_tasks() {
        let node = node();
        let t_task = node.t_prtr_s(); // the peak-speedup operating point
        let n = 100;
        let prtr_calls = uniform_prtr_calls(&node, t_task, n, true);
        let frtr_calls: Vec<TaskCall> = prtr_calls.iter().map(|c| c.task.clone()).collect();
        let frtr = run_frtr(&node, &frtr_calls, &dctx()).unwrap();
        let prtr = run_prtr(&node, &prtr_calls, &dctx()).unwrap();
        let speedup = frtr.total_s() / prtr.total_s();
        // The paper's "up to 87x" on the measured dual-PRR layout.
        assert!(speedup > 75.0 && speedup < 90.0, "speedup = {speedup}");
    }

    #[test]
    fn shared_channel_ablation_slows_configuration() {
        let mut node = node();
        let calls = uniform_prtr_calls(&node, node.t_prtr_s(), 50, true);
        let fast = run_prtr(&node, &calls, &dctx()).unwrap();
        node.config_waits_for_data_input = true;
        let slow = run_prtr(&node, &calls, &dctx()).unwrap();
        assert!(slow.total_s() > fast.total_s());
    }

    #[test]
    fn decision_latency_is_paid_once_plus_per_miss() {
        let mut node = node();
        node.decision_latency_s = 0.005;
        let t_task = 0.1;
        let n = 20;
        let calls = uniform_prtr_calls(&node, t_task, n, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let t_task_actual = calls[0].task.task_time_s(&node);
        // Steady state (T_task + T_d > T_PRTR here): increment
        // max(T_task + T_d, T_PRTR) + T_control.
        let inc = (t_task_actual + 0.005).max(node.t_prtr_s()) + node.control_overhead_s;
        let first = 0.005 + node.t_prtr_s() + node.control_overhead_s + t_task_actual;
        let expected = first + (n - 1) as f64 * inc;
        let rel = (report.total_s() - expected).abs() / expected;
        assert!(rel < 1e-6, "sim {} vs {}", report.total_s(), expected);
    }

    #[test]
    fn empty_prtr_run_rejected() {
        assert!(run_prtr(&node(), &[], &dctx()).is_err());
    }

    #[test]
    fn bad_slot_rejected() {
        let node = node();
        let calls = vec![PrtrCall {
            task: TaskCall::symmetric("x", 1024),
            hit: false,
            slot: 99,
        }];
        assert!(run_prtr(&node, &calls, &dctx()).is_err());
    }

    #[test]
    fn instrumented_runs_are_timing_neutral_and_accounted() {
        let node = node();
        let calls = uniform_prtr_calls(&node, 0.05, 20, false);
        let plain = run_prtr(&node, &calls, &dctx()).unwrap();
        let ctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let traced = run_prtr(&node, &calls, &ctx).unwrap();
        assert_eq!(plain, traced, "instrumentation must not perturb timing");

        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.prtr.calls"], 20);
        assert_eq!(snap.counters["sim.prtr.hits"], 19);
        assert_eq!(snap.counters["sim.prtr.misses"], 1);
        assert_eq!(snap.counters["sim.prtr.partial_configs"], traced.n_config);
        assert_eq!(
            snap.counters["sim.icap.bytes"],
            traced.n_config * node.prr_bitstream_bytes
        );
        assert_eq!(snap.histograms["sim.prtr.call_latency_s"].count, 20);
        // Lane-busy gauges mirror the timeline.
        let busy = traced.timeline.lane_busy_s(Lane::ConfigPort);
        assert!((snap.gauges["sim.prtr.lane_busy_s.config"] - busy).abs() < 1e-12);
        let util = busy / traced.total_s();
        assert!((snap.gauges["sim.prtr.config_port.utilization"] - util).abs() < 1e-9);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "sim.run_prtr");
    }

    #[test]
    fn frtr_instrumentation_counts_api_calls() {
        let node = node();
        let calls: Vec<TaskCall> = (0..4)
            .map(|i| TaskCall::with_task_time(format!("t{i}"), &node, 0.01))
            .collect();
        let ctx = ExecCtx::default().with_registry(hprc_obs::Registry::new());
        let report = run_frtr(&node, &calls, &ctx).unwrap();
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counters["sim.frtr.calls"], 4);
        assert_eq!(snap.counters["sim.frtr.full_configs"], 4);
        assert_eq!(snap.counters["sim.cray_api.calls"], 4);
        assert!(!snap.counters.contains_key("sim.cray_api.rejections"));
        assert!(snap.gauges["sim.frtr.makespan_s"] > 0.0);
        assert_eq!(report.n_config, 4);
    }

    #[test]
    fn timeline_records_all_activity_kinds() {
        let node = node();
        let calls = uniform_prtr_calls(&node, 0.05, 5, true);
        let report = run_prtr(&node, &calls, &dctx()).unwrap();
        let text = report.timeline.render_text(80);
        assert!(text.contains('P'), "partial configs:\n{text}");
        assert!(text.contains('X'), "executions:\n{text}");
        assert!(report.timeline.lane_busy_s(Lane::ConfigPort) > 0.0);
    }
}
