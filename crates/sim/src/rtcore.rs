//! The RT core services block: memory banks and FIFOs (section 4.2).
//!
//! "Cray provides a services (interface) block, called RT core, that
//! manages the access to these memories and the communication with the
//! host. ... In a typical scenario the host sends the data to the local
//! memory of the FPGA and the user logic reads the data from memory,
//! processes the data and then returns the results back to memory."
//!
//! This module models the pieces the executor's lumped `T_task` abstracts:
//! the four QDR-II banks (16 MB total), their assignment to PRRs, the
//! FIFOs that decouple bank timing from the cores, and chunked streaming
//! for payloads larger than the assigned bank capacity.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// One QDR-II SRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBank {
    /// Capacity in bytes (4 MB per bank on the XD1 card).
    pub capacity_bytes: u64,
    /// Peak bank bandwidth in bytes/second (QDR-II at 200 MHz, 8 B/clk).
    pub bandwidth_bytes_per_sec: f64,
}

impl MemoryBank {
    /// The Cray XD1 QDR-II bank: 4 MB, 1.6 GB/s.
    pub fn xd1() -> MemoryBank {
        MemoryBank {
            capacity_bytes: 4 << 20,
            bandwidth_bytes_per_sec: 1.6e9,
        }
    }
}

/// A FIFO between a memory bank and a PRR (section 4.2: FIFOs "reduced the
/// impact of the fixed allocation of bus macros", "simplified the
/// interface", and "guaranteed data availability for the hardware
/// functions when the memory was being read").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fifo {
    /// Depth in words.
    pub depth_words: u32,
    /// Word width in bits.
    pub width_bits: u32,
}

impl Fifo {
    /// The XD1 design's 512 × 64-bit BRAM FIFO.
    pub fn xd1() -> Fifo {
        Fifo {
            depth_words: 512,
            width_bits: 64,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.depth_words as u64 * self.width_bits as u64 / 8
    }

    /// Minimum FIFO depth (in words) that absorbs a producer stall of
    /// `stall_s` seconds without starving a consumer draining at
    /// `consumer_bytes_per_sec` — the sizing rule for "guaranteed data
    /// availability ... when the memory was being read".
    pub fn min_depth_for_stall(consumer_bytes_per_sec: f64, stall_s: f64, width_bits: u32) -> u32 {
        let bytes = consumer_bytes_per_sec * stall_s;
        let word_bytes = (width_bits / 8).max(1) as f64;
        (bytes / word_bytes).ceil() as u32
    }
}

/// The services block: banks, the FIFO design, and per-chunk handshake
/// cost for streaming payloads through bounded bank space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtCore {
    /// The four memory banks.
    pub banks: [MemoryBank; 4],
    /// The bank↔PRR FIFO design.
    pub fifo: Fifo,
    /// Host/firmware handshake overhead per streamed chunk, seconds.
    pub chunk_overhead_s: f64,
}

impl RtCore {
    /// The Cray XD1 services block.
    pub fn xd1() -> RtCore {
        RtCore {
            banks: [MemoryBank::xd1(); 4],
            fifo: Fifo::xd1(),
            chunk_overhead_s: 2e-6,
        }
    }

    /// Usable buffer bytes for a PRR owning `banks` banks, double-buffered
    /// (half receives the next chunk while half feeds the core).
    pub fn buffer_bytes(&self, banks: &[u8]) -> Result<u64, SimError> {
        if banks.is_empty() {
            return Err(SimError::InvalidRun("PRR owns no memory bank".into()));
        }
        let mut total = 0;
        for &b in banks {
            let bank = self
                .banks
                .get(b as usize)
                .ok_or_else(|| SimError::InvalidRun(format!("no bank {b}")))?;
            total += bank.capacity_bytes;
        }
        Ok(total / 2)
    }

    /// Number of chunks a `bytes` payload streams through the PRR's
    /// buffer space.
    pub fn chunks_for(&self, bytes: u64, banks: &[u8]) -> Result<u64, SimError> {
        let buf = self.buffer_bytes(banks)?;
        Ok(bytes.div_ceil(buf).max(1))
    }

    /// Extra time the chunked transfer adds on top of the streaming model:
    /// one handshake per chunk.
    pub fn chunking_overhead_s(&self, bytes: u64, banks: &[u8]) -> Result<f64, SimError> {
        Ok(self.chunks_for(bytes, banks)? as f64 * self.chunk_overhead_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xd1_banks_total_16_mb() {
        let rt = RtCore::xd1();
        let total: u64 = rt.banks.iter().map(|b| b.capacity_bytes).sum();
        assert_eq!(total, 16 << 20);
    }

    #[test]
    fn dual_layout_buffer_is_4_mb() {
        // Two banks per PRR, double-buffered: 8 MB / 2.
        let rt = RtCore::xd1();
        assert_eq!(rt.buffer_bytes(&[0, 1]).unwrap(), 4 << 20);
        assert_eq!(rt.buffer_bytes(&[0, 1, 2, 3]).unwrap(), 8 << 20);
    }

    #[test]
    fn small_payloads_are_one_chunk() {
        let rt = RtCore::xd1();
        assert_eq!(rt.chunks_for(1024, &[0, 1]).unwrap(), 1);
        assert_eq!(rt.chunks_for(0, &[0, 1]).unwrap(), 1);
    }

    #[test]
    fn large_payloads_chunk_and_cost_overhead() {
        let rt = RtCore::xd1();
        // 335 MB (an X_task = 1 payload on the measured node) through a
        // 4 MB double buffer: 84 chunks.
        let bytes = 335 << 20;
        let chunks = rt.chunks_for(bytes, &[0, 1]).unwrap();
        assert_eq!(chunks, (335u64 << 20).div_ceil(4 << 20));
        let overhead = rt.chunking_overhead_s(bytes, &[0, 1]).unwrap();
        // Negligible vs the 1.678 s task: the lumped T_task abstraction
        // the paper (and our executor) uses is safe.
        assert!(overhead < 0.001, "overhead = {overhead}");
    }

    #[test]
    fn bankless_prr_rejected() {
        let rt = RtCore::xd1();
        assert!(rt.buffer_bytes(&[]).is_err());
        assert!(rt.buffer_bytes(&[7]).is_err());
    }

    #[test]
    fn fifo_capacity_and_sizing() {
        let f = Fifo::xd1();
        assert_eq!(f.capacity_bytes(), 4096);
        // A 200 MB/s consumer surviving a 10 µs producer stall needs
        // 2000 bytes = 250 64-bit words; the 512-deep FIFO suffices.
        let need = Fifo::min_depth_for_stall(200e6, 10e-6, 64);
        // ~250 words (ceil of a floating-point product: 250 or 251).
        assert!((250..=251).contains(&need), "need = {need}");
        assert!(need <= f.depth_words);
    }
}
