//! Property tests pinning the steady-state fast path to the reference
//! executors: for *any* call sequence — periodic, aperiodic, or
//! periodic-with-breaks — `run_frtr`/`run_prtr` must be observably
//! indistinguishable from `run_frtr_reference`/`run_prtr_reference`:
//! same totals, same per-call timings, same RLE-expanded timeline, and
//! bit-identical metrics (counters, histograms, gauges).

use hprc_ctx::{ExecCtx, Symbol};
use hprc_fpga::floorplan::Floorplan;
use hprc_obs::Registry;
use hprc_sim::executor::{
    run_frtr, run_frtr_reference, run_prtr, run_prtr_reference, ExecutionReport,
};
use hprc_sim::node::NodeConfig;
use hprc_sim::task::{PrtrCall, TaskCall};
use proptest::prelude::*;

/// One call archetype: everything that determines a call's durations.
#[derive(Debug, Clone)]
struct Template {
    name: String,
    bytes_in: u64,
    bytes_out: u64,
    hit: bool,
    slot: usize,
}

fn template() -> impl Strategy<Value = Template> {
    (
        0..4u8,
        0..500_000u64,
        0..500_000u64,
        any::<bool>(),
        0..2usize,
    )
        .prop_map(|(name, bytes_in, bytes_out, hit, slot)| Template {
            name: format!("task{name}"),
            bytes_in,
            bytes_out,
            hit,
            slot,
        })
}

/// Call sequences biased toward the interesting regimes: fully random
/// (fast path mostly idle), strictly periodic (single long jump), and
/// periodic with an aperiodic interruption (jump must re-arm).
fn sequence() -> impl Strategy<Value = Vec<Template>> {
    (
        0..3u8,
        proptest::collection::vec(template(), 1..120),
        proptest::collection::vec(template(), 1..6),
        2..40usize,
        template(),
        2..20usize,
    )
        .prop_map(
            |(mode, random, pattern, reps_a, oddball, reps_b)| match mode {
                0 => random,
                1 => {
                    let mut out = Vec::with_capacity(pattern.len() * reps_a);
                    for _ in 0..reps_a {
                        out.extend(pattern.iter().cloned());
                    }
                    out
                }
                _ => {
                    let mut out = Vec::new();
                    for _ in 0..reps_a {
                        out.extend(pattern.iter().cloned());
                    }
                    out.push(oddball);
                    for _ in 0..reps_b {
                        out.extend(pattern.iter().cloned());
                    }
                    out
                }
            },
        )
}

fn node(estimated: bool, waits: bool) -> NodeConfig {
    let fp = Floorplan::xd1_dual_prr();
    let mut node = if estimated {
        NodeConfig::xd1_estimated(&fp)
    } else {
        NodeConfig::xd1_measured(&fp)
    };
    node.config_waits_for_data_input = waits;
    node
}

fn assert_equivalent(
    fast: &ExecutionReport,
    reference: &ExecutionReport,
    fctx: &ExecCtx,
    rctx: &ExecCtx,
) {
    assert_eq!(fast.total, reference.total);
    assert_eq!(fast.n_config, reference.n_config);
    assert_eq!(fast.calls, reference.calls);
    let a: Vec<_> = fast.timeline.iter().collect();
    let b: Vec<_> = reference.timeline.iter().collect();
    assert_eq!(a, b, "expanded timelines must match event-for-event");
    assert_eq!(fast.timeline.len(), reference.timeline.len());
    let fsnap = fctx.registry.snapshot();
    let rsnap = rctx.registry.snapshot();
    assert_eq!(fsnap.counters, rsnap.counters);
    assert_eq!(fsnap.histograms, rsnap.histograms);
    use serde::Serialize;
    assert_eq!(
        fsnap.to_json_value()["gauges"].to_string(),
        rsnap.to_json_value()["gauges"].to_string()
    );
    // The causal journal must be byte-identical too: the fast path's
    // replayed cycles mint the same ids, parents, flows, and times the
    // reference path would.
    assert_eq!(fctx.journal.records(), rctx.journal.records());
    assert_eq!(
        fctx.journal.to_jsonl("equiv", 0),
        rctx.journal.to_jsonl("equiv", 0),
        "journal JSONL must be byte-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prtr_fast_path_is_equivalent(
        seq in sequence(),
        estimated in any::<bool>(),
        waits in any::<bool>(),
    ) {
        let node = node(estimated, waits);
        let calls: Vec<PrtrCall> = seq
            .iter()
            .map(|t| PrtrCall {
                task: TaskCall {
                    name: Symbol::from(t.name.as_str()),
                    bytes_in: t.bytes_in,
                    bytes_out: t.bytes_out,
                },
                hit: t.hit,
                slot: t.slot % node.n_prrs,
            })
            .collect();
        let fctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let rctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let fast = run_prtr(&node, &calls, &fctx).unwrap();
        let reference = run_prtr_reference(&node, &calls, &rctx).unwrap();
        assert_equivalent(&fast, &reference, &fctx, &rctx);
    }

    #[test]
    fn frtr_fast_path_is_equivalent(
        seq in sequence(),
        estimated in any::<bool>(),
        waits in any::<bool>(),
    ) {
        let node = node(estimated, waits);
        let calls: Vec<TaskCall> = seq
            .iter()
            .map(|t| TaskCall {
                name: Symbol::from(t.name.as_str()),
                bytes_in: t.bytes_in,
                bytes_out: t.bytes_out,
            })
            .collect();
        let fctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let rctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let fast = run_frtr(&node, &calls, &fctx).unwrap();
        let reference = run_frtr_reference(&node, &calls, &rctx).unwrap();
        assert_equivalent(&fast, &reference, &fctx, &rctx);
    }

    /// Long strictly-periodic sequences must actually compress: the RLE
    /// timeline stores far fewer items than it expands to.
    #[test]
    fn periodic_sequences_compress(
        pattern in proptest::collection::vec(template(), 1..4),
        reps in 30..60usize,
    ) {
        let node = node(false, false);
        let calls: Vec<PrtrCall> = (0..reps)
            .flat_map(|_| pattern.iter())
            .map(|t| PrtrCall {
                task: TaskCall {
                    name: Symbol::from(t.name.as_str()),
                    bytes_in: t.bytes_in,
                    bytes_out: t.bytes_out,
                },
                hit: t.hit,
                slot: t.slot % node.n_prrs,
            })
            .collect();
        let fast = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
        // Detection costs at most two warm-up periods plus the jump
        // block; well under half the expanded run for >= 30 reps.
        prop_assert!(
            fast.timeline.n_items() < fast.timeline.len() as usize / 2,
            "{} items for {} events",
            fast.timeline.n_items(),
            fast.timeline.len()
        );
    }
}
