//! Property tests extending the fast==reference equivalence guarantee to
//! faulty runs: for *any* call sequence and *any* seeded fault plan,
//! `run_frtr_faulty`/`run_prtr_faulty` must be observably
//! indistinguishable from their reference counterparts — same totals,
//! same per-call timings, same drop counts, same RLE-expanded timeline,
//! and bit-identical metrics. Also pins the zero-probability identity
//! (a disarmed plan is byte-for-byte the clean executor) and the
//! certain-fault extreme (everything drops, nothing panics).

use hprc_ctx::{ExecCtx, Symbol};
use hprc_fault::{FaultPlan, FaultSpec, RecoveryPolicy};
use hprc_fpga::floorplan::Floorplan;
use hprc_obs::Registry;
use hprc_sim::executor::{
    run_frtr, run_frtr_faulty, run_frtr_faulty_reference, run_prtr, run_prtr_faulty,
    run_prtr_faulty_reference, ExecutionReport,
};
use hprc_sim::node::NodeConfig;
use hprc_sim::task::{PrtrCall, TaskCall};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Template {
    name: String,
    bytes_in: u64,
    bytes_out: u64,
    hit: bool,
    slot: usize,
}

fn template() -> impl Strategy<Value = Template> {
    (
        0..4u8,
        0..500_000u64,
        0..500_000u64,
        any::<bool>(),
        0..2usize,
    )
        .prop_map(|(name, bytes_in, bytes_out, hit, slot)| Template {
            name: format!("task{name}"),
            bytes_in,
            bytes_out,
            hit,
            slot,
        })
}

/// Same three regimes as `fast_path_equivalence`: random, strictly
/// periodic, and periodic with an aperiodic interruption. Faults make
/// the periodic cases the interesting ones — a fault mid-period must
/// break the jump and re-arm afterwards.
fn sequence() -> impl Strategy<Value = Vec<Template>> {
    (
        0..3u8,
        proptest::collection::vec(template(), 1..80),
        proptest::collection::vec(template(), 1..6),
        2..30usize,
        template(),
        2..15usize,
    )
        .prop_map(
            |(mode, random, pattern, reps_a, oddball, reps_b)| match mode {
                0 => random,
                1 => {
                    let mut out = Vec::with_capacity(pattern.len() * reps_a);
                    for _ in 0..reps_a {
                        out.extend(pattern.iter().cloned());
                    }
                    out
                }
                _ => {
                    let mut out = Vec::new();
                    for _ in 0..reps_a {
                        out.extend(pattern.iter().cloned());
                    }
                    out.push(oddball);
                    for _ in 0..reps_b {
                        out.extend(pattern.iter().cloned());
                    }
                    out
                }
            },
        )
}

/// Fault plans spanning the whole regime: disarmed, rare, common, and
/// near-certain faults, with varied recovery budgets.
fn plan() -> impl Strategy<Value = FaultPlan> {
    (0..4u8, 0.0..1.0f64, any::<u64>(), 1..4u32, 1..3u32, 1..4u32).prop_map(
        |(regime, u, seed, max_partial, max_full, blacklist_after)| {
            let rate = match regime {
                0 => 0.0,
                1 => 0.001 + u * 0.049,
                2 => 0.05 + u * 0.35,
                _ => 0.9 + u * 0.0999,
            };
            let policy = RecoveryPolicy {
                max_partial_attempts: max_partial,
                max_full_attempts: max_full,
                blacklist_after,
                ..RecoveryPolicy::default()
            };
            FaultPlan::new(FaultSpec::uniform(rate), policy, seed)
        },
    )
}

fn node(estimated: bool, waits: bool) -> NodeConfig {
    let fp = Floorplan::xd1_dual_prr();
    let mut node = if estimated {
        NodeConfig::xd1_estimated(&fp)
    } else {
        NodeConfig::xd1_measured(&fp)
    };
    node.config_waits_for_data_input = waits;
    node
}

fn prtr_calls(seq: &[Template], node: &NodeConfig) -> Vec<PrtrCall> {
    seq.iter()
        .map(|t| PrtrCall {
            task: TaskCall {
                name: Symbol::from(t.name.as_str()),
                bytes_in: t.bytes_in,
                bytes_out: t.bytes_out,
            },
            hit: t.hit,
            slot: t.slot % node.n_prrs,
        })
        .collect()
}

fn frtr_calls(seq: &[Template]) -> Vec<TaskCall> {
    seq.iter()
        .map(|t| TaskCall {
            name: Symbol::from(t.name.as_str()),
            bytes_in: t.bytes_in,
            bytes_out: t.bytes_out,
        })
        .collect()
}

fn assert_equivalent(
    fast: &ExecutionReport,
    reference: &ExecutionReport,
    fctx: &ExecCtx,
    rctx: &ExecCtx,
) {
    assert_eq!(fast.total, reference.total);
    assert_eq!(fast.n_config, reference.n_config);
    assert_eq!(fast.n_dropped, reference.n_dropped);
    assert_eq!(fast.calls, reference.calls);
    let a: Vec<_> = fast.timeline.iter().collect();
    let b: Vec<_> = reference.timeline.iter().collect();
    assert_eq!(a, b, "expanded timelines must match event-for-event");
    assert_eq!(fast.timeline.len(), reference.timeline.len());
    let fsnap = fctx.registry.snapshot();
    let rsnap = rctx.registry.snapshot();
    assert_eq!(fsnap.counters, rsnap.counters);
    assert_eq!(fsnap.histograms, rsnap.histograms);
    use serde::Serialize;
    assert_eq!(
        fsnap.to_json_value()["gauges"].to_string(),
        rsnap.to_json_value()["gauges"].to_string()
    );
    // The causal journal must be byte-identical too: the fast path's
    // replayed cycles mint the same ids, parents, flows, and times the
    // reference path would.
    assert_eq!(fctx.journal.records(), rctx.journal.records());
    assert_eq!(
        fctx.journal.to_jsonl("equiv", 0),
        rctx.journal.to_jsonl("equiv", 0),
        "journal JSONL must be byte-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn faulty_prtr_fast_path_is_equivalent(
        seq in sequence(),
        plan in plan(),
        estimated in any::<bool>(),
        waits in any::<bool>(),
    ) {
        let node = node(estimated, waits);
        let calls = prtr_calls(&seq, &node);
        let fctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let rctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let fast = run_prtr_faulty(&node, &calls, &plan, &fctx).unwrap();
        let reference = run_prtr_faulty_reference(&node, &calls, &plan, &rctx).unwrap();
        assert_equivalent(&fast, &reference, &fctx, &rctx);
    }

    #[test]
    fn faulty_frtr_fast_path_is_equivalent(
        seq in sequence(),
        plan in plan(),
        estimated in any::<bool>(),
        waits in any::<bool>(),
    ) {
        let node = node(estimated, waits);
        let calls = frtr_calls(&seq);
        let fctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let rctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let fast = run_frtr_faulty(&node, &calls, &plan, &fctx).unwrap();
        let reference = run_frtr_faulty_reference(&node, &calls, &plan, &rctx).unwrap();
        assert_equivalent(&fast, &reference, &fctx, &rctx);
    }

    /// All-probabilities-zero identity: with every probability at 0.0
    /// (or the plan disarmed outright) the faulty executors are
    /// byte-for-byte the clean executors — timelines, reports, metrics.
    #[test]
    fn zero_probability_plans_are_the_clean_executors(
        seq in sequence(),
        seed in any::<u64>(),
        armed_zero in any::<bool>(),
    ) {
        let node = node(false, false);
        let plan = if armed_zero {
            // Armed object, all probabilities zero: still must take the
            // exact clean path (armed() is false for a zero spec).
            FaultPlan::new(FaultSpec::default(), RecoveryPolicy::default(), seed)
        } else {
            FaultPlan::disarmed()
        };

        let calls = prtr_calls(&seq, &node);
        let cctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let fctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let clean = run_prtr(&node, &calls, &cctx).unwrap();
        let faulty = run_prtr_faulty(&node, &calls, &plan, &fctx).unwrap();
        prop_assert_eq!(&clean, &faulty);
        assert_equivalent(&faulty, &clean, &fctx, &cctx);

        let calls = frtr_calls(&seq);
        let cctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let fctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_journal(hprc_obs::Journal::new(7));
        let clean = run_frtr(&node, &calls, &cctx).unwrap();
        let faulty = run_frtr_faulty(&node, &calls, &plan, &fctx).unwrap();
        prop_assert_eq!(&clean, &faulty);
        assert_equivalent(&faulty, &clean, &fctx, &cctx);
    }

    /// Certain faults everywhere: every configuration chain exhausts its
    /// retries and drops; the executors must degrade gracefully — report
    /// every call, configure nothing, and never panic.
    #[test]
    fn certain_faults_never_panic(
        seq in sequence(),
        seed in any::<u64>(),
    ) {
        let node = node(false, false);
        let spec = FaultSpec {
            p_crc: 1.0,
            p_icap_timeout: 1.0,
            p_api_transfer: 1.0,
            p_activation: 1.0,
            p_seu: 1.0,
        };
        let plan = FaultPlan::new(spec, RecoveryPolicy::default(), seed);

        let calls = prtr_calls(&seq, &node);
        let n_miss = calls.iter().filter(|c| !c.hit).count() as u64;
        let report = run_prtr_faulty(&node, &calls, &plan, &ExecCtx::default()).unwrap();
        prop_assert_eq!(report.calls.len(), calls.len());
        prop_assert_eq!(report.n_dropped, n_miss);
        prop_assert_eq!(report.n_config, 0);

        let calls = frtr_calls(&seq);
        let report = run_frtr_faulty(&node, &calls, &plan, &ExecCtx::default()).unwrap();
        prop_assert_eq!(report.calls.len(), calls.len());
        prop_assert_eq!(report.n_dropped, calls.len() as u64);
        prop_assert_eq!(report.n_config, 0);
    }
}
