//! Causal-structure tests for the run journal under faulty executors:
//! every `recovery` span must open and close *inside* its parent call
//! span, and a faulty call's retry chain (attempts + recovery windows)
//! must form one connected flow-link chain from the prefetch decision
//! (or first attempt, under FRTR) to its last node.

use std::collections::{HashMap, HashSet};

use hprc_ctx::{ExecCtx, Symbol};
use hprc_fault::{FaultPlan, FaultSpec, RecoveryPolicy};
use hprc_fpga::floorplan::Floorplan;
use hprc_obs::{Journal, JournalRecord, SpanId};
use hprc_sim::executor::{run_frtr_faulty, run_prtr, run_prtr_faulty};
use hprc_sim::node::NodeConfig;
use hprc_sim::task::{PrtrCall, TaskCall};

fn node() -> NodeConfig {
    NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr())
}

fn plan(rate: f64, seed: u64) -> FaultPlan {
    let policy = RecoveryPolicy {
        max_partial_attempts: 2,
        max_full_attempts: 2,
        blacklist_after: 2,
        ..RecoveryPolicy::default()
    };
    FaultPlan::new(FaultSpec::uniform(rate), policy, seed)
}

fn task(i: usize) -> TaskCall {
    TaskCall {
        name: Symbol::from(format!("task{}", i % 3).as_str()),
        bytes_in: 10_000,
        bytes_out: 5_000,
    }
}

fn prtr_calls(n: usize) -> Vec<PrtrCall> {
    (0..n)
        .map(|i| PrtrCall {
            task: task(i),
            hit: i % 4 == 1,
            slot: i % 2,
        })
        .collect()
}

/// Indexed view of one journal: spans, events, flows.
struct View {
    opens: HashMap<SpanId, (Option<SpanId>, String, u64)>,
    closes: HashMap<SpanId, u64>,
    flows: Vec<(SpanId, SpanId, String)>,
}

impl View {
    fn of(journal: &Journal) -> View {
        let mut v = View {
            opens: HashMap::new(),
            closes: HashMap::new(),
            flows: Vec::new(),
        };
        for rec in journal.records() {
            match rec {
                JournalRecord::Open {
                    id,
                    parent,
                    name,
                    t_ns,
                    ..
                } => {
                    v.opens.insert(id, (parent, name, t_ns));
                }
                JournalRecord::Event {
                    id,
                    parent,
                    name,
                    t_ns,
                    ..
                } => {
                    // Events are instantaneous spans for this analysis.
                    v.opens.insert(id, (parent, name, t_ns));
                    v.closes.insert(id, t_ns);
                }
                JournalRecord::Close { id, t_ns } => {
                    v.closes.insert(id, t_ns);
                }
                JournalRecord::Flow { from, to, kind } => v.flows.push((from, to, kind)),
                JournalRecord::Metric { .. } => {}
            }
        }
        v
    }

    fn recoveries(&self) -> Vec<SpanId> {
        self.opens
            .iter()
            .filter(|(_, (_, name, _))| name == "recovery")
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Every `recovery` span has a parent call span and its whole window
/// sits inside the parent's open..close window.
fn assert_recoveries_nest(v: &View) -> usize {
    let recoveries = v.recoveries();
    for id in &recoveries {
        let (parent, _, open_t) = &v.opens[id];
        let close_t = v.closes[id];
        let parent = parent.expect("recovery span has a parent call span");
        let (_, pname, popen) = &v.opens[&parent];
        let pclose = *v.closes.get(&parent).expect("parent call span closes");
        assert!(
            pname.starts_with("task"),
            "recovery parents to the call span, got {pname:?}"
        );
        assert!(
            *popen <= *open_t && close_t <= pclose,
            "recovery [{open_t}, {close_t}] escapes its call span [{popen}, {pclose}]"
        );
    }
    recoveries.len()
}

/// Every call span containing chain nodes has them all connected into a
/// single flow-link component.
fn assert_chains_connected(v: &View) -> usize {
    // Group chain nodes (attempts, recoveries, decisions, executions)
    // by their parent call span.
    let chain_names = [
        "configure",
        "full-configure",
        "recovery",
        "decide",
        "execute",
    ];
    let mut per_call: HashMap<SpanId, Vec<SpanId>> = HashMap::new();
    for (id, (parent, name, _)) in &v.opens {
        if let Some(p) = parent {
            if chain_names.contains(&name.as_str()) && v.opens.contains_key(p) {
                per_call.entry(*p).or_default().push(*id);
            }
        }
    }
    let mut adj: HashMap<SpanId, Vec<SpanId>> = HashMap::new();
    for (from, to, _) in &v.flows {
        adj.entry(*from).or_default().push(*to);
        adj.entry(*to).or_default().push(*from);
    }
    let mut faulty_calls = 0usize;
    for (call, nodes) in &per_call {
        let has_recovery = nodes.iter().any(|n| v.opens[n].1 == "recovery");
        if !has_recovery {
            continue; // clean call; chain connectivity is trivial
        }
        faulty_calls += 1;
        // BFS over flow links restricted to this call's nodes.
        let members: HashSet<SpanId> = nodes.iter().copied().collect();
        let mut seen: HashSet<SpanId> = HashSet::new();
        let mut queue = vec![nodes[0]];
        while let Some(n) = queue.pop() {
            if !seen.insert(n) {
                continue;
            }
            for next in adj.get(&n).into_iter().flatten() {
                if members.contains(next) && !seen.contains(next) {
                    queue.push(*next);
                }
            }
        }
        assert_eq!(
            seen.len(),
            members.len(),
            "call {call:?}: retry chain is disconnected ({}/{} nodes reachable)",
            seen.len(),
            members.len()
        );
    }
    faulty_calls
}

#[test]
fn prtr_faulty_recoveries_nest_and_chains_connect() {
    let node = node();
    let calls = prtr_calls(120);
    let ctx = ExecCtx::default().with_journal(Journal::new(21));
    run_prtr_faulty(&node, &calls, &plan(0.4, 0xFA17), &ctx).unwrap();
    let v = View::of(&ctx.journal);
    let n_recoveries = assert_recoveries_nest(&v);
    let n_faulty = assert_chains_connected(&v);
    assert!(n_recoveries > 0, "rate 0.4 over 120 calls must inject");
    assert!(n_faulty > 0);
    // A faulted miss still links decision → chain via a `hide` edge and
    // reaches execution (or stops at a drop); fault and retry edges
    // exist by construction.
    let kinds: HashSet<&str> = v.flows.iter().map(|(_, _, k)| k.as_str()).collect();
    assert!(kinds.contains("fault"), "kinds: {kinds:?}");
    assert!(kinds.contains("retry"), "kinds: {kinds:?}");
    assert!(kinds.contains("escalate"), "kinds: {kinds:?}");
    assert!(kinds.contains("hide"), "kinds: {kinds:?}");
}

#[test]
fn frtr_faulty_recoveries_nest_and_chains_connect() {
    let node = node();
    let calls: Vec<TaskCall> = (0..80).map(task).collect();
    let ctx = ExecCtx::default().with_journal(Journal::new(22));
    run_frtr_faulty(&node, &calls, &plan(0.5, 0x5EED), &ctx).unwrap();
    let v = View::of(&ctx.journal);
    let n_recoveries = assert_recoveries_nest(&v);
    assert!(n_recoveries > 0);
    assert_chains_connected(&v);
    let kinds: HashSet<&str> = v.flows.iter().map(|(_, _, k)| k.as_str()).collect();
    assert!(kinds.contains("fault") && kinds.contains("retry"));
}

#[test]
fn clean_prtr_links_decisions_to_hidden_configs_and_hits() {
    let node = node();
    let calls = prtr_calls(40);
    let ctx = ExecCtx::default().with_journal(Journal::new(23));
    run_prtr(&node, &calls, &ctx).unwrap();
    let v = View::of(&ctx.journal);
    let kinds: HashSet<&str> = v.flows.iter().map(|(_, _, k)| k.as_str()).collect();
    assert!(kinds.contains("hide"), "decision→configure edges exist");
    assert!(kinds.contains("activate"), "configure→execute edges exist");
    assert!(kinds.contains("hit"), "decision→execute edges on hits");
    // Every `hide` edge runs decision → configure within one call span.
    for (from, to, kind) in &v.flows {
        if kind == "hide" {
            assert_eq!(v.opens[from].1, "decide");
            assert_eq!(v.opens[to].1, "configure");
            assert_eq!(v.opens[from].0, v.opens[to].0, "same call span");
        }
    }
    assert!(v.recoveries().is_empty(), "clean run has no recoveries");
}
