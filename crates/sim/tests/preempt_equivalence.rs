//! Property tests pinning the preemptive renderer's fast==reference
//! guarantee: for *any* schedule the `hprc-sched` preemptible engine
//! emits — random task sets, strict-priority or EDF, with and without
//! faults armed — [`run_preemptive`] must be observably indistinguishable
//! from [`run_preemptive_reference`]: same totals, same per-dispatch
//! timings, same RLE-expanded timeline, bit-identical metrics, and
//! byte-identical causal journals. A crafted steady periodic workload
//! additionally asserts the closed-form jump actually engages (the fast
//! timeline holds strictly fewer RLE items than the reference).

use hprc_ctx::{ExecCtx, Symbol};
use hprc_fault::{FaultPlan, FaultSpec, RecoveryPolicy};
use hprc_fpga::floorplan::Floorplan;
use hprc_obs::Registry;
use hprc_sched::preempt::{
    simulate_preemptive, Edf, PreemptCosts, RtTask, ScheduleSegment, StrictPriority,
};
use hprc_sched::{Policy, TaskId};
use hprc_sim::executor::ExecutionReport;
use hprc_sim::node::NodeConfig;
use hprc_sim::preempt::{run_preemptive, run_preemptive_reference, PreemptSegment};
use hprc_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// The sched→sim bridge the experiment layer uses: engine windows are
/// absolute nanoseconds, the renderer wants `SimTime` pairs and an
/// interned task name.
fn to_sim_segments(segments: &[ScheduleSegment]) -> Vec<PreemptSegment> {
    const NAMES: [&str; 4] = ["Median Filter", "Sobel Filter", "Smoothing Filter", "FIR"];
    segments
        .iter()
        .map(|s| PreemptSegment {
            name: Symbol::from(NAMES[s.task.0 % NAMES.len()]),
            slot: s.slot,
            decision_start: SimTime(s.decision.start_ns),
            decision_end: SimTime(s.decision.end_ns),
            config: s.config.map(|w| (SimTime(w.start_ns), SimTime(w.end_ns))),
            config_clean: SimDuration(s.config_clean_ns),
            restore: s.restore.map(|w| (SimTime(w.start_ns), SimTime(w.end_ns))),
            restore_clean: SimDuration(s.restore_clean_ns),
            control_start: SimTime(s.control.start_ns),
            control_end: SimTime(s.control.end_ns),
            exec_start: SimTime(s.exec.start_ns),
            exec_end: SimTime(s.exec.end_ns),
            save: s.save.map(|w| (SimTime(w.start_ns), SimTime(w.end_ns))),
            hit: s.hit,
            forced_full: s.forced_full,
            resumed: s.resumed,
            preempted: s.preempted,
            dropped: s.dropped,
            clean: s.clean,
        })
        .collect()
}

fn task_set() -> impl Strategy<Value = Vec<RtTask>> {
    proptest::collection::vec(
        (
            (
                0..4usize,
                1..40u64, // exec in 0.1 ms units
                5..80u64, // period in 0.1 ms units
                0..4u32,  // priority
            ),
            (
                0..3u8,    // state size class
                1..8usize, // frames
                0..30u64,  // phase in 0.1 ms units
                1..4u64,   // deadline as multiple of period (loose..tight)
            ),
        ),
        1..5,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(
                |((task, exec, period, priority), (state, frames, phase, dl))| RtTask {
                    task: TaskId(task),
                    exec_s: exec as f64 * 1e-4,
                    period_s: period as f64 * 1e-4,
                    deadline_s: period as f64 * 1e-4 * dl as f64,
                    priority,
                    state_bytes: [20_000, 100_000, 400_000][state as usize],
                    frames,
                    phase_s: phase as f64 * 1e-4,
                },
            )
            .collect()
    })
}

fn costs() -> impl Strategy<Value = PreemptCosts> {
    (1..20u64, 1..10u64, 5..40u64).prop_map(|(quantum, partial, port)| PreemptCosts {
        t_decision_s: 2e-6,
        t_control_s: 4.8e-6,
        t_partial_s: partial as f64 * 1e-4,
        t_full_s: partial as f64 * 1e-4 * 14.0,
        quantum_s: quantum as f64 * 1e-4,
        port_bytes_per_s: port as f64 * 5e6,
    })
}

/// Disarmed through near-certain fault plans, as in `fault_equivalence`.
fn plan() -> impl Strategy<Value = FaultPlan> {
    (0..4u8, 0.0..1.0f64, any::<u64>(), 1..4u32, 1..4u32).prop_map(
        |(regime, u, seed, max_partial, blacklist_after)| {
            let rate = match regime {
                0 => 0.0,
                1 => 0.001 + u * 0.049,
                2 => 0.05 + u * 0.35,
                _ => 0.9 + u * 0.0999,
            };
            if rate == 0.0 {
                FaultPlan::disarmed()
            } else {
                let policy = RecoveryPolicy {
                    max_partial_attempts: max_partial,
                    blacklist_after,
                    ..RecoveryPolicy::default()
                };
                FaultPlan::new(FaultSpec::uniform(rate), policy, seed)
            }
        },
    )
}

fn policy_for(choice: u8) -> Box<dyn Policy> {
    match choice % 4 {
        0 => Box::new(StrictPriority::new()),
        1 => Box::new(StrictPriority::non_preemptive()),
        2 => Box::new(Edf::new()),
        _ => Box::new(Edf::non_preemptive()),
    }
}

fn assert_equivalent(
    fast: &ExecutionReport,
    reference: &ExecutionReport,
    fctx: &ExecCtx,
    rctx: &ExecCtx,
) {
    assert_eq!(fast.total, reference.total);
    assert_eq!(fast.n_config, reference.n_config);
    assert_eq!(fast.n_dropped, reference.n_dropped);
    assert_eq!(fast.calls, reference.calls);
    let a: Vec<_> = fast.timeline.iter().collect();
    let b: Vec<_> = reference.timeline.iter().collect();
    assert_eq!(a, b, "expanded timelines must match event-for-event");
    assert_eq!(fast.timeline.len(), reference.timeline.len());
    let fsnap = fctx.registry.snapshot();
    let rsnap = rctx.registry.snapshot();
    assert_eq!(fsnap.counters, rsnap.counters);
    assert_eq!(fsnap.histograms, rsnap.histograms);
    use serde::Serialize;
    assert_eq!(
        fsnap.to_json_value()["gauges"].to_string(),
        rsnap.to_json_value()["gauges"].to_string()
    );
    // The journal must be byte-identical too: cycle replay mints the
    // same ids, parents, flows, and times the per-segment path would.
    assert_eq!(fctx.journal.records(), rctx.journal.records());
    assert_eq!(
        fctx.journal.to_jsonl("equiv", 0),
        rctx.journal.to_jsonl("equiv", 0),
        "journal JSONL must be byte-identical"
    );
}

fn ctx() -> ExecCtx {
    ExecCtx::default()
        .with_registry(Registry::new())
        .with_journal(hprc_obs::Journal::new(7))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast == reference on engine-produced schedules across policies
    /// and fault regimes. The schedules here contain genuine
    /// preemptions, restores, escalations, and drops — everything the
    /// salted segment keys must confine the jump around.
    #[test]
    fn preemptive_fast_path_is_equivalent(
        tasks in task_set(),
        costs in costs(),
        plan in plan(),
        choice in any::<u8>(),
    ) {
        let mut policy = policy_for(choice);
        let outcome = simulate_preemptive(
            &tasks, 2, policy.as_mut(), &costs, &plan, &ExecCtx::default());
        prop_assume!(!outcome.segments.is_empty());
        let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
        let segments = to_sim_segments(&outcome.segments);
        let fctx = ctx();
        let rctx = ctx();
        let fast = run_preemptive(&node, &segments, &fctx).unwrap();
        let reference = run_preemptive_reference(&node, &segments, &rctx).unwrap();
        assert_equivalent(&fast, &reference, &fctx, &rctx);
    }
}

/// A steady periodic workload must actually trip the closed-form jump:
/// once the hit pattern settles, the fast path's RLE timeline carries
/// strictly fewer items than the reference's flat event list.
#[test]
fn steady_periodic_schedule_compresses() {
    let tasks = [RtTask {
        task: TaskId(0),
        exec_s: 1e-3,
        period_s: 3e-3,
        deadline_s: 3e-3,
        priority: 0,
        state_bytes: 100_000,
        frames: 64,
        phase_s: 0.0,
    }];
    let costs = PreemptCosts {
        t_decision_s: 2e-6,
        t_control_s: 4.8e-6,
        t_partial_s: 1e-3,
        t_full_s: 14e-3,
        quantum_s: 1e-3,
        port_bytes_per_s: 1e8,
    };
    let outcome = simulate_preemptive(
        &tasks,
        2,
        &mut Edf::new(),
        &costs,
        &FaultPlan::disarmed(),
        &ExecCtx::default(),
    );
    assert_eq!(outcome.stats.completed, 64);
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let segments = to_sim_segments(&outcome.segments);
    let fctx = ctx();
    let rctx = ctx();
    let fast = run_preemptive(&node, &segments, &fctx).unwrap();
    let reference = run_preemptive_reference(&node, &segments, &rctx).unwrap();
    assert_equivalent(&fast, &reference, &fctx, &rctx);
    assert!(
        fast.timeline.n_items() < reference.timeline.n_items(),
        "fast path must compress a steady periodic schedule ({} vs {} items)",
        fast.timeline.n_items(),
        reference.timeline.n_items(),
    );
}

/// Preemption-heavy crafted case: one long low-priority job repeatedly
/// checkpointed by a stream of urgent short frames. Verifies the
/// renderer handles save/restore windows and resumed segments
/// equivalently, and that preemptions genuinely occurred.
#[test]
fn preemption_heavy_schedule_is_equivalent() {
    let tasks = [
        RtTask {
            task: TaskId(0),
            exec_s: 20e-3,
            period_s: 100e-3,
            deadline_s: 100e-3,
            priority: 3,
            state_bytes: 400_000,
            frames: 2,
            phase_s: 0.0,
        },
        RtTask {
            task: TaskId(1),
            exec_s: 1e-3,
            period_s: 5e-3,
            deadline_s: 5e-3,
            priority: 0,
            state_bytes: 20_000,
            frames: 16,
            phase_s: 1e-3,
        },
    ];
    let costs = PreemptCosts {
        t_decision_s: 2e-6,
        t_control_s: 4.8e-6,
        t_partial_s: 1e-3,
        t_full_s: 14e-3,
        quantum_s: 0.5e-3,
        port_bytes_per_s: 1e8,
    };
    let outcome = simulate_preemptive(
        &tasks,
        1,
        &mut StrictPriority::new(),
        &costs,
        &FaultPlan::disarmed(),
        &ExecCtx::default(),
    );
    assert!(outcome.stats.preemptions > 0, "workload must preempt");
    assert!(outcome.stats.restores > 0, "workload must restore");
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let segments = to_sim_segments(&outcome.segments);
    let fctx = ctx();
    let rctx = ctx();
    let fast = run_preemptive(&node, &segments, &fctx).unwrap();
    let reference = run_preemptive_reference(&node, &segments, &rctx).unwrap();
    assert_equivalent(&fast, &reference, &fctx, &rctx);
}
