//! Cross-validation of the discrete-event simulator against the analytical
//! model (experiment E5 in DESIGN.md): equations (1)/(2), (3)/(5), and (6)
//! must agree with measured simulator totals, exactly for FRTR and
//! asymptotically (with O(1/n) cold-start error) for PRTR.

use hprc_ctx::ExecCtx;
use hprc_fpga::floorplan::Floorplan;
use hprc_model::params::{ModelParams, NormalizedTimes};
use hprc_model::{frtr, prtr, speedup};
use hprc_sim::executor::{run_frtr, run_prtr};
use hprc_sim::node::NodeConfig;
use hprc_sim::task::{PrtrCall, TaskCall};

/// Builds the model parameters matching a node + task-time + hit pattern.
fn model_params(node: &NodeConfig, t_task: f64, hit_ratio: f64, n: u64) -> ModelParams {
    let t_frtr = node.t_frtr_s();
    let times = NormalizedTimes {
        x_task: t_task / t_frtr,
        x_control: node.control_overhead_s / t_frtr,
        x_decision: node.decision_latency_s / t_frtr,
        x_prtr: node.t_prtr_s() / t_frtr,
    };
    ModelParams::new(times, hit_ratio, n).unwrap()
}

fn uniform_calls(node: &NodeConfig, t_task: f64, n: usize, hits: &[bool]) -> Vec<PrtrCall> {
    (0..n)
        .map(|i| PrtrCall {
            task: TaskCall::with_task_time(format!("t{}", i % 3), node, t_task),
            hit: hits[i],
            slot: i % node.n_prrs,
        })
        .collect()
}

#[test]
fn frtr_matches_equation_2_exactly_for_any_n() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    for n in [1usize, 3, 17, 200] {
        let t_task = 0.07;
        let calls: Vec<TaskCall> = (0..n)
            .map(|i| TaskCall::with_task_time(format!("t{i}"), &node, t_task))
            .collect();
        let t_task_actual = calls[0].task_time_s(&node);
        let report = run_frtr(&node, &calls, &ExecCtx::default()).unwrap();
        let params = model_params(&node, t_task_actual, 0.0, n as u64);
        let predicted = frtr::total_time_normalized(&params) * node.t_frtr_s();
        let rel = (report.total_s() - predicted).abs() / predicted;
        assert!(
            rel < 1e-9,
            "n={n}: sim {} vs eq(2) {predicted}",
            report.total_s()
        );
    }
}

#[test]
fn prtr_all_miss_converges_to_equation_5() {
    // H = 0 (the paper's measured configuration) across the three regimes.
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let n = 2000;
    for &t_task in &[
        0.2 * node.t_prtr_s(),  // configuration-bound
        node.t_prtr_s(),        // the peak
        10.0 * node.t_prtr_s(), // comparable
        1.2 * node.t_frtr_s(),  // data-intensive
    ] {
        let calls = uniform_calls(&node, t_task, n, &vec![false; n]);
        let t_task_actual = calls[0].task.task_time_s(&node);
        let report = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
        let params = model_params(&node, t_task_actual, 0.0, n as u64);
        let predicted = prtr::total_time_normalized(&params) * node.t_frtr_s();
        let rel = (report.total_s() - predicted).abs() / predicted;
        assert!(
            rel < 0.005,
            "t_task={t_task}: sim {} vs eq(5) {predicted} (rel {rel})",
            report.total_s()
        );
    }
}

#[test]
fn prtr_with_hits_converges_to_equation_5() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let n = 2000;
    for &h_target in &[0.25, 0.5, 0.9] {
        // Deterministic, evenly-spread hit pattern (Bresenham) with
        // approximately h_target * n hits.
        let mut hits = vec![false; n];
        let mut acc = 0.0;
        for h in hits.iter_mut() {
            acc += h_target;
            if acc >= 1.0 {
                acc -= 1.0;
                *h = true;
            } else {
                *h = false;
            }
        }
        let actual_h = hits.iter().filter(|&&b| b).count() as f64 / n as f64;
        let t_task = 0.5 * node.t_prtr_s();
        let calls = uniform_calls(&node, t_task, n, &hits);
        let t_task_actual = calls[0].task.task_time_s(&node);
        let report = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
        let params = model_params(&node, t_task_actual, actual_h, n as u64);
        let predicted = prtr::total_time_normalized(&params) * node.t_frtr_s();
        let rel = (report.total_s() - predicted).abs() / predicted;
        assert!(
            rel < 0.01,
            "H={actual_h}: sim {} vs eq(5) {predicted} (rel {rel})",
            report.total_s()
        );
    }
}

#[test]
fn measured_speedup_matches_equation_6() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let n = 1000;
    for &t_task in &[0.5 * node.t_prtr_s(), node.t_prtr_s(), 0.3, 2.0] {
        let prtr_calls = uniform_calls(&node, t_task, n, &vec![false; n]);
        let frtr_calls: Vec<TaskCall> = prtr_calls.iter().map(|c| c.task).collect();
        let t_task_actual = frtr_calls[0].task_time_s(&node);
        let s_sim = run_frtr(&node, &frtr_calls, &ExecCtx::default())
            .unwrap()
            .total_s()
            / run_prtr(&node, &prtr_calls, &ExecCtx::default())
                .unwrap()
                .total_s();
        let params = model_params(&node, t_task_actual, 0.0, n as u64);
        let s_model = speedup::speedup(&params);
        let rel = (s_sim - s_model).abs() / s_model;
        assert!(
            rel < 0.01,
            "t_task={t_task}: sim speedup {s_sim} vs eq(6) {s_model}"
        );
    }
}

#[test]
fn decision_latency_validation() {
    // Nonzero T_decision: the simulator pays one un-overlapped decision
    // plus the per-call max() terms, converging to eq (5).
    let mut node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    node.decision_latency_s = 0.002;
    let n = 1000;
    let t_task = node.t_prtr_s();
    let calls = uniform_calls(&node, t_task, n, &vec![false; n]);
    let t_task_actual = calls[0].task.task_time_s(&node);
    let report = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
    let params = model_params(&node, t_task_actual, 0.0, n as u64);
    let predicted = prtr::total_time_normalized(&params) * node.t_frtr_s();
    let rel = (report.total_s() - predicted).abs() / predicted;
    assert!(
        rel < 0.005,
        "sim {} vs {} (rel {rel})",
        report.total_s(),
        predicted
    );
}

#[test]
fn estimated_node_peak_speedup_is_about_7x() {
    // Figure 9(a): estimated configuration times cap PRTR at ~7x.
    let node = NodeConfig::xd1_estimated(&Floorplan::xd1_dual_prr());
    let n = 500;
    let t_task = node.t_prtr_s();
    let prtr_calls = uniform_calls(&node, t_task, n, &vec![false; n]);
    let frtr_calls: Vec<TaskCall> = prtr_calls.iter().map(|c| c.task).collect();
    let s = run_frtr(&node, &frtr_calls, &ExecCtx::default())
        .unwrap()
        .total_s()
        / run_prtr(&node, &prtr_calls, &ExecCtx::default())
            .unwrap()
            .total_s();
    assert!(s > 6.3 && s < 7.3, "peak speedup = {s}");
}

#[test]
fn measured_node_peak_speedup_is_about_87x() {
    // Figure 9(b): measured configuration times allow up to ~87x.
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let n = 500;
    let t_task = node.t_prtr_s();
    let prtr_calls = uniform_calls(&node, t_task, n, &vec![false; n]);
    let frtr_calls: Vec<TaskCall> = prtr_calls.iter().map(|c| c.task).collect();
    let s = run_frtr(&node, &frtr_calls, &ExecCtx::default())
        .unwrap()
        .total_s()
        / run_prtr(&node, &prtr_calls, &ExecCtx::default())
            .unwrap()
            .total_s();
    assert!(s > 80.0 && s < 90.0, "peak speedup = {s}");
}

#[test]
fn data_intensive_tasks_cap_at_2x() {
    // The paper's headline bound, measured end to end on the simulator.
    let node = NodeConfig::xd1_estimated(&Floorplan::xd1_dual_prr());
    let n = 300;
    for factor in [1.0, 2.0, 5.0] {
        let t_task = factor * node.t_frtr_s();
        let prtr_calls = uniform_calls(&node, t_task, n, &vec![false; n]);
        let frtr_calls: Vec<TaskCall> = prtr_calls.iter().map(|c| c.task).collect();
        let s = run_frtr(&node, &frtr_calls, &ExecCtx::default())
            .unwrap()
            .total_s()
            / run_prtr(&node, &prtr_calls, &ExecCtx::default())
                .unwrap()
                .total_s();
        assert!(s <= 2.0 + 0.01, "factor {factor}: speedup = {s}");
        if factor == 1.0 {
            assert!(s > 1.9, "speedup at X_task=1 should approach 2, got {s}");
        }
    }
}
