//! Workspace-level attribution invariants: the `.attr.json` artifact is
//! independent of the parallelism budget, and the attribution agrees
//! with the experiments' own published numbers.

use prtr_bounds::ctx::ExecCtx;
use prtr_bounds::exp;
use prtr_bounds::obs::Registry;

fn attr_json(id: &str, jobs: usize) -> String {
    let ctx = ExecCtx::default()
        .with_registry(Registry::new())
        .with_jobs(jobs);
    let report = exp::attribution(id, &ctx).expect("experiment has attribution");
    serde_json::to_string_pretty(&report).expect("serializable")
}

#[test]
fn attribution_artifacts_are_jobs_invariant() {
    for id in ["fig9a", "fig9b", "profiles", "ext-faults"] {
        let serial = attr_json(id, 1);
        let parallel = attr_json(id, 4);
        assert_eq!(serial, parallel, "{id}.attr.json must not depend on jobs");
    }
}

#[test]
fn faulty_runs_keep_the_six_bucket_identity() {
    // The ext-faults attribution re-runs the mid-sweep fault rate, so
    // its timelines carry recovery stretches (retries, backoff,
    // escalated full reconfigurations). The attr layer machine-checks
    // the sum-to-span identity on construction; re-verify it here over
    // the serialized seconds, and confirm recovery really was present.
    let ctx = ExecCtx::default();
    let report = exp::attribution("ext-faults", &ctx).unwrap();
    for run in [&report.frtr, &report.prtr] {
        let sum = run.exec_s
            + run.hidden_config_s
            + run.visible_config_s
            + run.decision_s
            + run.control_s
            + run.idle_s;
        assert!(
            (sum - run.span_s).abs() < 1e-9,
            "sum {sum} vs span {}",
            run.span_s
        );
        assert!(run.total_config_s > 0.0);
    }
}

#[test]
fn experiments_without_timelines_have_no_attribution() {
    let ctx = ExecCtx::default();
    for id in ["table1", "fig5", "summary", "validate"] {
        assert!(exp::attribution(id, &ctx).is_none(), "{id}");
    }
}

#[test]
fn fig9b_peak_attribution_matches_the_paper_story() {
    let ctx = ExecCtx::default();
    let report = exp::attribution("fig9b", &ctx).unwrap();
    // At T_task = T_PRTR with H = 0 tasks run back-to-back, so nearly
    // every configuration streams entirely under the previous task.
    let h = report.prtr.hiding_efficiency.expect("PRTR configures");
    assert!(h > 0.9, "hiding efficiency {h}");
    // FRTR can never overlap.
    assert_eq!(report.frtr.hiding_efficiency, Some(0.0));
    // The measured peak sits close under Eq (7)'s asymptote.
    assert!(report.gap.speedup_sim > 75.0);
    assert!(report.gap.bound_gap >= -1e-9, "S_inf bounds the finite run");
    assert!(report.gap.bound_gap_frac < 0.1);
    assert!(!report.gap.long_task_bound_active);
    // The six buckets of each run sum to its span (identity re-checked
    // here over the serialized seconds, within f64 print precision).
    for run in [&report.frtr, &report.prtr] {
        let sum = run.exec_s
            + run.hidden_config_s
            + run.visible_config_s
            + run.decision_s
            + run.control_s
            + run.idle_s;
        assert!(
            (sum - run.span_s).abs() < 1e-9,
            "sum {sum} vs span {}",
            run.span_s
        );
    }
}
