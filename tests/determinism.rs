//! Determinism: every stochastic-looking component of the reproduction is
//! seeded and replayable — the property that makes EXPERIMENTS.md's
//! numbers exact rather than approximate.

use prtr_bounds::prelude::*;
use prtr_bounds::sched::policies::RandomPolicy;
use prtr_bounds::virt::runtime::{run as run_virt, RuntimeConfig};

#[test]
fn experiments_are_bit_identical_across_runs() {
    // A representative subset (the full set runs in the harness tests).
    for id in ["table2", "fig5", "ext-decision", "ext-flows", "ext-hybrid"] {
        let a = prtr_bounds::exp::run_experiment(id, &ExecCtx::default()).unwrap();
        let b = prtr_bounds::exp::run_experiment(id, &ExecCtx::default()).unwrap();
        assert_eq!(a.json, b.json, "{id} differs across runs");
        assert_eq!(a.body, b.body, "{id} body differs across runs");
    }
}

#[test]
fn simulator_is_replayable() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let calls: Vec<PrtrCall> = (0..50)
        .map(|i| PrtrCall {
            task: TaskCall::with_task_time("Sobel Filter", &node, 0.01),
            hit: i % 3 == 0,
            slot: i % 2,
        })
        .collect();
    let a = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
    let b = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn seeded_randomness_is_replayable_everywhere() {
    // Traces.
    let spec = TraceSpec::Zipf {
        n_tasks: 6,
        alpha: 1.3,
        len: 500,
    };
    assert_eq!(spec.generate(99), spec.generate(99));
    // Random replacement policy.
    let trace = spec.generate(7);
    let a = simulate(
        &trace,
        2,
        &mut RandomPolicy::new(5),
        false,
        &ExecCtx::default(),
    );
    let b = simulate(
        &trace,
        2,
        &mut RandomPolicy::new(5),
        false,
        &ExecCtx::default(),
    );
    assert_eq!(a, b);
    // Images.
    assert_eq!(Image::random(64, 64, 3), Image::random(64, 64, 3));
    // Filters (parallel included).
    let img = Image::random(48, 31, 8);
    assert_eq!(
        FilterKind::Median.apply_parallel(&img, 4),
        FilterKind::Median.apply_parallel(&img, 7)
    );
}

#[test]
fn virtualization_runtime_is_replayable() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_quad_prr());
    let apps = vec![
        App::cycling(0, "a", &["Median Filter", "Sobel Filter"], 25, 0.003, 0.0),
        App::cycling(1, "b", &["Smoothing Filter"], 25, 0.003, 0.01),
    ];
    for cfg in [
        RuntimeConfig::frtr(),
        RuntimeConfig::prtr_demand(),
        RuntimeConfig::prtr_overlapped(),
    ] {
        let a = run_virt(&node, &apps, &cfg, &ExecCtx::default()).unwrap();
        let b = run_virt(&node, &apps, &cfg, &ExecCtx::default()).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn bitstream_generation_is_replayable() {
    use prtr_bounds::fpga::compress::compress;
    use prtr_bounds::fpga::frames::ConfigMemory;

    let fp = Floorplan::xd1_dual_prr();
    let cols = fp.prrs[0].region.column_indices();
    let build = || {
        let mut m = ConfigMemory::blank(&fp.device);
        m.fill_region_pattern(&cols, 1234).unwrap();
        Bitstream::partial_module_based(&fp.device, &m, &cols).unwrap()
    };
    let a = build();
    let b = build();
    assert_eq!(a, b);
    assert_eq!(compress(&a), compress(&b));
}
