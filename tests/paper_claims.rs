//! Every quantitative claim the paper makes, checked against this
//! reproduction. Section references are to the paper.

use prtr_bounds::fpga::ports::ConfigPort;
use prtr_bounds::model::bounds;
use prtr_bounds::model::frtr;
use prtr_bounds::prelude::*;

/// §1: "applications on some systems spend 25% to 98.5% of their execution
/// time performing reconfiguration" — the FRTR model spans that range.
#[test]
fn claim_reconfiguration_fraction_range() {
    // 25 %: X_task + X_control = 3.
    let p = ModelParams::experimental(3.0, 0.1, 0.0, 1);
    assert!((frtr::configuration_fraction(&p) - 0.25).abs() < 1e-12);
    // 98.5 %: X_task + X_control = 1/0.985 - 1.
    let p = ModelParams::experimental(1.0 / 0.985 - 1.0, 0.1, 0.0, 1);
    assert!((frtr::configuration_fraction(&p) - 0.985).abs() < 1e-9);
}

/// §2.2: module-based flow needs n bitstreams of fixed size;
/// difference-based needs n(n-1) of variable size.
#[test]
fn claim_flow_counts() {
    use prtr_bounds::fpga::bitstream::{difference_based_inventory, module_based_inventory};
    let fp = Floorplan::xd1_dual_prr();
    let cols = fp.prrs[0].region.column_indices();
    let seeds = [1u64, 2, 3, 4];
    let mb = module_based_inventory(&fp.device, &cols, &seeds).unwrap();
    let db = difference_based_inventory(&fp.device, &cols, &seeds).unwrap();
    assert_eq!(mb.bitstream_count, 4);
    assert!(mb.sizes.windows(2).all(|w| w[0] == w[1]), "fixed size");
    assert_eq!(db.bitstream_count, 12);
}

/// §3.1/Figure 5: "PRTR performance for tasks characterized by higher
/// execution requirements than the full configuration time, i.e.
/// X_task > 1, can not exceed twice that of FRTR no matter how efficient
/// the pre-fetching algorithm used is."
#[test]
fn claim_two_x_bound() {
    for h in [0.0, 0.5, 1.0] {
        for x_prtr in [0.01, 0.1, 0.9] {
            assert!(bounds::max_speedup_long_tasks(h, x_prtr, 300) <= 2.0 + 1e-9);
        }
    }
}

/// §3.1: for H ≈ 1 "the performance decreases monotonically with the task
/// time requirement no matter how large or small the partial configuration
/// overhead is."
#[test]
fn claim_perfect_prefetch_monotone() {
    for x_prtr in [0.01, 0.5, 1.0] {
        let mut prev = f64::INFINITY;
        for i in 1..100 {
            let x_task = i as f64 * 0.05;
            let p = ModelParams::new(NormalizedTimes::ideal(x_task, x_prtr), 1.0, 1).unwrap();
            let s = asymptotic_speedup(&p);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }
}

/// §3.1: for H ≈ 0 "the performance reaches its maximum only for those
/// tasks whose time requirement is equal to the partial configuration
/// time."
#[test]
fn claim_h0_peak_at_x_prtr() {
    for x_prtr in [0.012f64, 0.17, 0.37] {
        let base = ModelParams::new(NormalizedTimes::ideal(0.1, x_prtr), 0.0, 1).unwrap();
        let (x_at, s) = bounds::numeric_supremum(&base, 1e-4, 10.0, 4000);
        assert!(
            (x_at - x_prtr).abs() / x_prtr < 0.02,
            "peak at {x_at}, expected {x_prtr}"
        );
        assert!((s - (1.0 + 1.0 / x_prtr)).abs() / s < 0.01);
    }
}

/// §4.1: the vendor API rejects partial bitstreams (size check + DONE
/// check), which is why PRTR had to go through the ICAP.
#[test]
fn claim_vendor_api_rejects_partials() {
    let api = prtr_bounds::sim::CrayConfigApi::xd1_measured(2_381_764);
    assert!(api
        .configure(404_168, true, true, &ExecCtx::default())
        .is_err());
    assert!(api
        .configure(2_381_764, true, true, &ExecCtx::default())
        .is_err()); // DONE check
    assert!(api
        .configure(2_381_764, false, false, &ExecCtx::default())
        .is_ok());
}

/// Table 2, estimated column: 36.09 ms / 13.45 ms / 6.12 ms at 66 MB/s.
#[test]
fn claim_table2_estimated_times() {
    let port = ConfigPort::selectmap_v2pro();
    assert!((port.transfer_time_s(2_381_764) * 1e3 - 36.09).abs() < 0.01);
    assert!((port.transfer_time_s(887_784) * 1e3 - 13.45).abs() < 0.01);
    assert!((port.transfer_time_s(404_168) * 1e3 - 6.12).abs() < 0.01);
}

/// Table 2, measured column, via the modeled vendor API and ICAP path.
#[test]
fn claim_table2_measured_times() {
    let fp = Floorplan::xd1_dual_prr();
    let node = NodeConfig::xd1_measured(&fp);
    assert!((node.t_frtr_s() * 1e3 - 1678.04).abs() < 0.05);
    assert!((node.t_prtr_s() * 1e3 - 19.77).abs() < 0.1);
    // Normalized: 0.012 (dual, measured) and 0.17 (dual, estimated).
    assert!((node.x_prtr() - 0.012).abs() < 0.0005);
    let est = NodeConfig::xd1_estimated(&fp);
    assert!((est.x_prtr() - 0.17).abs() < 0.002);
}

/// §5: "For less data-intensive tasks, the PRTR can not exceed 7 times the
/// performance of FRTR" (estimated times) and "the peak performance ...
/// can reach up to 87x" (measured times).
#[test]
fn claim_figure9_peaks() {
    let est = NodeConfig::xd1_estimated(&Floorplan::xd1_dual_prr());
    let peak_est = 1.0 + 1.0 / est.x_prtr();
    assert!(
        peak_est > 6.5 && peak_est < 7.1,
        "estimated peak {peak_est}"
    );

    let meas = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let peak_meas = 1.0 + 1.0 / meas.x_prtr();
    // The paper rounds up to "87x"; the exact Table 2 ratio gives ~85.8x.
    assert!(
        peak_meas > 83.0 && peak_meas < 88.0,
        "measured peak {peak_meas}"
    );
}

/// §5: with estimated times, "most of the data-intensive tasks require
/// larger execution time given the I/O bandwidth, i.e. 1400 MB/s" — a
/// memory-bank-sized streaming task exceeds the 36 ms full configuration.
#[test]
fn claim_data_intensive_vs_estimated_full_config() {
    let m = TaskTimeModel::xd1_filter();
    assert!(m.task_time_s(16 << 20, 16 << 20) > 0.036);
}

/// §4.3: experimental parameters — T_control ≈ 10 µs is negligible
/// against every configuration quantity.
#[test]
fn claim_control_overhead_negligible() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    assert!(node.control_overhead_s < 0.001 * node.t_prtr_s());
}

/// Table 1: the three filters plus infrastructure all fit the XC2VP50
/// with the utilization percentages printed in the paper.
#[test]
fn claim_table1_fits() {
    use prtr_bounds::fpga::resources::Utilization;
    let lib = ModuleLibrary::paper_table1();
    let cap = Device::xc2vp50().capacity();
    let expect = [
        ("Static Region", 7, 11, 10),
        ("PR Controller", 0, 0, 3),
        ("Median Filter", 6, 6, 0),
        ("Sobel Filter", 2, 2, 0),
        ("Smoothing Filter", 4, 3, 0),
    ];
    for (name, luts_pct, ffs_pct, bram_pct) in expect {
        let m = lib.get(name).unwrap();
        let u = m.resources.utilization(&cap);
        assert_eq!(
            Utilization::percent_truncated(u.luts),
            luts_pct,
            "{name} LUTs"
        );
        assert_eq!(Utilization::percent_truncated(u.ffs), ffs_pct, "{name} FFs");
        assert_eq!(
            Utilization::percent_truncated(u.brams),
            bram_pct,
            "{name} BRAM"
        );
    }
}
