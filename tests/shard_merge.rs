//! Property tests for [`hprc_obs::ShardedRegistry`] merge semantics —
//! the invariants the deterministic parallel runner leans on:
//!
//! * counters add, so the merged totals are independent of which shard
//!   a recording landed in (and of merge order);
//! * gauges with per-shard-disjoint names (the runner's discipline —
//!   each index writes its own keys or the sweep summary writes after
//!   the merge barrier) are likewise order-independent;
//! * histogram sample *order* is index-order-deterministic: merging in
//!   shard-index order reproduces the exact serial recording, no matter
//!   in what order the workers actually finished;
//! * empty shards (and an empty shard set) are inert.
//!
//! These live at the workspace root because the obs crate's own
//! manifest is CI-guarded to its minimal dependency set (no dev-deps
//! beyond the workspace defaults), while the root crate already links
//! proptest.

use hprc_obs::{Registry, ShardedRegistry};
use proptest::prelude::*;
use serde::Serialize;

/// One shard's recordings: counter bumps on a small shared name pool,
/// and histogram samples on one shared instrument. An empty op list is
/// a valid (and important) case: a worker that recorded nothing.
#[derive(Debug, Clone)]
struct ShardOps {
    counters: Vec<(u8, u64)>,
    samples: Vec<f64>,
}

fn shard_ops() -> impl Strategy<Value = ShardOps> {
    (
        proptest::collection::vec((0..4u8, 0..100u64), 0..8),
        proptest::collection::vec(0.0..10.0f64, 0..8),
    )
        .prop_map(|(counters, samples)| ShardOps { counters, samples })
}

fn record(reg: &Registry, shard_index: usize, ops: &ShardOps) {
    for &(name, amount) in &ops.counters {
        reg.counter(&format!("c{name}")).add(amount);
    }
    // Disjoint gauge names per shard: the runner's write discipline.
    if !ops.counters.is_empty() || !ops.samples.is_empty() {
        reg.gauge(&format!("g{shard_index}"))
            .set(shard_index as f64);
    }
    for &sample in &ops.samples {
        reg.histogram("h").record(sample);
    }
}

/// Deterministic permutation of `0..n` from a seed (argsort of a
/// splitmix-style keyed hash; no RNG dependency needed).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| {
        let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^ (x >> 27)
    });
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Assigning the same shard contents to different shard indices (a
    /// permuted fan-out) must not change merged counter totals, gauge
    /// values under disjoint names, or histogram aggregate statistics.
    #[test]
    fn counter_and_gauge_merge_is_order_independent(
        ops in proptest::collection::vec(shard_ops(), 0..6),
        seed in any::<u64>(),
    ) {
        let perm = permutation(ops.len(), seed);

        let forward = Registry::new();
        let shards = ShardedRegistry::new(&forward, ops.len());
        for (i, op) in ops.iter().enumerate() {
            record(shards.shard(i), i, op);
        }
        shards.merge(&forward);

        let permuted = Registry::new();
        let shards = ShardedRegistry::new(&permuted, ops.len());
        for (slot, &src) in perm.iter().enumerate() {
            // Shard `slot` now holds what shard `src` held, but keeps
            // `src`'s gauge key so the gauge name set stays disjoint.
            record(shards.shard(slot), src, &ops[src]);
        }
        shards.merge(&permuted);

        let a = forward.snapshot();
        let b = permuted.snapshot();
        prop_assert_eq!(&a.counters, &b.counters);
        prop_assert_eq!(&a.gauges, &b.gauges);
        // Histogram *order* may differ under permutation; the
        // aggregates must not.
        prop_assert_eq!(a.histograms.len(), b.histograms.len());
        for (name, ha) in &a.histograms {
            let hb = &b.histograms[name];
            prop_assert_eq!(ha.count, hb.count);
            prop_assert!((ha.sum - hb.sum).abs() < 1e-9);
            prop_assert_eq!(ha.min, hb.min);
            prop_assert_eq!(ha.max, hb.max);
        }
    }

    /// Merging in shard-index order reproduces the serial oracle
    /// exactly — including histogram sample order — no matter in what
    /// order the workers finished recording.
    #[test]
    fn histogram_merge_is_index_order_deterministic(
        ops in proptest::collection::vec(shard_ops(), 0..6),
        seed in any::<u64>(),
    ) {
        let serial = Registry::new();
        for (i, op) in ops.iter().enumerate() {
            record(&serial, i, op);
        }

        let parent = Registry::new();
        let shards = ShardedRegistry::new(&parent, ops.len());
        // Workers complete in an arbitrary order...
        for &i in &permutation(ops.len(), seed) {
            record(shards.shard(i), i, &ops[i]);
        }
        // ...but the merge barrier folds them in index order.
        shards.merge(&parent);

        let a = serial.snapshot().to_json_value();
        let b = parent.snapshot().to_json_value();
        prop_assert_eq!(&a["counters"], &b["counters"]);
        prop_assert_eq!(&a["gauges"], &b["gauges"]);
        prop_assert_eq!(&a["histograms"], &b["histograms"]);
    }

    /// The fleet orchestrator's hierarchical node → rack → cluster
    /// merge equals the flat single-level merge exactly — counters,
    /// gauges, and histogram sample order — for every shard count and
    /// rack size (including ragged last racks and racks larger than the
    /// shard set).
    #[test]
    fn two_level_merge_equals_flat_merge(
        ops in proptest::collection::vec(shard_ops(), 0..9),
        rack_size in 1..5usize,
    ) {
        let flat = Registry::new();
        let shards = ShardedRegistry::new(&flat, ops.len());
        for (i, op) in ops.iter().enumerate() {
            record(shards.shard(i), i, op);
        }
        shards.merge(&flat);

        let two_level = Registry::new();
        let shards = ShardedRegistry::new(&two_level, ops.len());
        for (i, op) in ops.iter().enumerate() {
            record(shards.shard(i), i, op);
        }
        shards.merge_two_level(&two_level, rack_size);

        prop_assert_eq!(
            flat.snapshot().to_json_value(),
            two_level.snapshot().to_json_value()
        );
    }

    /// The two-level merge is itself deterministic: two identical
    /// recording passes produce byte-identical snapshots regardless of
    /// the order workers touched their shards.
    #[test]
    fn two_level_merge_is_deterministic(
        ops in proptest::collection::vec(shard_ops(), 0..9),
        rack_size in 1..5usize,
        seed in any::<u64>(),
    ) {
        let run = |order: &[usize]| {
            let parent = Registry::new();
            let shards = ShardedRegistry::new(&parent, ops.len());
            for &i in order {
                record(shards.shard(i), i, &ops[i]);
            }
            shards.merge_two_level(&parent, rack_size);
            serde_json::to_string(&parent.snapshot().to_json_value()).unwrap()
        };
        let index_order: Vec<usize> = (0..ops.len()).collect();
        let a = run(&index_order);
        let b = run(&permutation(ops.len(), seed));
        prop_assert_eq!(a, b);
    }
}

#[test]
fn empty_shards_and_empty_sets_are_inert() {
    let parent = Registry::new();
    parent.counter("pre").add(7);
    parent.histogram("h").record(1.0);

    // Zero shards: merge is a no-op.
    ShardedRegistry::new(&parent, 0).merge(&parent);

    // Shards that recorded nothing (including one with an instrument
    // created but never bumped): still a no-op on counters/samples.
    let shards = ShardedRegistry::new(&parent, 3);
    let _ = shards.shard(1).histogram("h");
    shards.merge(&parent);

    let snap = parent.snapshot();
    assert_eq!(snap.counters["pre"], 7);
    assert_eq!(snap.histograms["h"].count, 1);
    assert_eq!(snap.histograms.len(), 1);
}
