//! End-to-end integration: images flow through the kernel substrate, the
//! call trace flows through the caching substrate, the schedule executes
//! on the node simulator, and the measured totals agree with the
//! analytical model — all five crates in one path.

use prtr_bounds::prelude::*;
use prtr_bounds::sched::cache::TaskId;
use prtr_bounds::sched::simulate::CallOutcome;

/// Full-stack run: functional results verified, then timing measured.
#[test]
fn pipeline_to_speedup() {
    // 1. Functional layer: the pipeline computes real results.
    let img = Image::random(128, 128, 99);
    let pipeline = Pipeline::denoise_edges();
    let out_seq = pipeline.run(&img);
    let out_par = pipeline.run_parallel(&img, 4);
    assert_eq!(out_seq, out_par, "parallel kernels must be bit-identical");

    // 2. Scheduling layer: the pipeline's call trace through 2 PRRs.
    let iterations = 50;
    let trace: Vec<TaskId> = (0..iterations * 3).map(|i| TaskId(i % 3)).collect();
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let mut policy = AlwaysMiss::new();
    let outcome = simulate(&trace, node.n_prrs, &mut policy, false, &ExecCtx::default());
    assert_eq!(outcome.hit_ratio(), 0.0);

    // 3. Execution layer: replay on the simulator.
    let bytes = img.len_bytes() as u64;
    let calls: Vec<PrtrCall> = trace
        .iter()
        .zip(&outcome.outcomes)
        .map(|(&t, o)| {
            let (hit, slot) = match *o {
                CallOutcome::Hit { slot } => (true, slot),
                CallOutcome::Miss { slot, .. } => (false, slot),
            };
            let name = ["Median Filter", "Smoothing Filter", "Sobel Filter"][t.0];
            PrtrCall {
                task: TaskCall::symmetric(name, bytes),
                hit,
                slot,
            }
        })
        .collect();
    let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
    let frtr = run_frtr(&node, &frtr_calls, &ExecCtx::default()).unwrap();
    let prtr = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
    let s_sim = frtr.total_s() / prtr.total_s();

    // 4. Model layer: equation (6) at the same parameters.
    let t_task = frtr_calls[0].task_time_s(&node);
    let params = ModelParams::new(
        NormalizedTimes {
            x_task: t_task / node.t_frtr_s(),
            x_control: node.control_overhead_s / node.t_frtr_s(),
            x_decision: 0.0,
            x_prtr: node.x_prtr(),
        },
        0.0,
        trace.len() as u64,
    )
    .unwrap();
    let s_model = speedup(&params);
    let rel = (s_sim - s_model).abs() / s_model;
    assert!(rel < 0.02, "sim {s_sim} vs model {s_model} (rel {rel})");
    // Tiny tasks on the measured node: PRTR wins enormously.
    assert!(s_sim > 50.0, "speedup = {s_sim}");
}

/// Prefetching closes the gap the paper predicted it would: same
/// workload, Markov prefetcher, strictly faster than always-miss, and the
/// model evaluated at the *measured* H still agrees.
#[test]
fn prefetching_end_to_end() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let trace: Vec<TaskId> = (0..600).map(|i| TaskId(i % 3)).collect();
    let t_task = 0.25 * node.t_prtr_s();

    let run_with = |policy: &mut dyn prtr_bounds::sched::Policy, prefetch: bool| {
        let outcome = simulate(&trace, node.n_prrs, policy, prefetch, &ExecCtx::default());
        let calls: Vec<PrtrCall> = trace
            .iter()
            .zip(&outcome.outcomes)
            .map(|(&t, o)| {
                let (hit, slot) = match *o {
                    CallOutcome::Hit { slot } => (true, slot),
                    CallOutcome::Miss { slot, .. } => (false, slot),
                };
                PrtrCall {
                    task: TaskCall::with_task_time(
                        ["Median Filter", "Smoothing Filter", "Sobel Filter"][t.0],
                        &node,
                        t_task,
                    ),
                    hit,
                    slot,
                }
            })
            .collect();
        let total = run_prtr(&node, &calls, &ExecCtx::default())
            .unwrap()
            .total_s();
        (outcome.hit_ratio(), total)
    };

    let (h_base, t_base) = run_with(&mut AlwaysMiss::new(), false);
    let (h_pf, t_pf) = run_with(&mut Markov::new(), true);
    assert_eq!(h_base, 0.0);
    assert!(h_pf > 0.9, "Markov H = {h_pf}");
    assert!(t_pf < 0.5 * t_base, "prefetch {t_pf} vs baseline {t_base}");
}

/// The FPGA substrate and the simulator agree on configuration costs:
/// the time the executor charges per partial configuration equals the
/// ICAP path's transfer time for the floorplan's bitstream, which itself
/// derives from frame geometry.
#[test]
fn configuration_costs_trace_to_frames() {
    let fp = Floorplan::xd1_dual_prr();
    let node = NodeConfig::xd1_measured(&fp);
    let prr = &fp.prrs[0];
    let frames = prr.region.frames(&fp.device).unwrap() as u64;
    let bytes = frames * fp.device.frame_bytes as u64 + fp.device.partial_overhead_bytes as u64;
    assert_eq!(bytes, node.prr_bitstream_bytes);
    // Executor-visible T_PRTR is exactly the ICAP time for those bytes.
    let calls = vec![PrtrCall {
        task: TaskCall::symmetric("Sobel Filter", 1024),
        hit: false,
        slot: 0,
    }];
    let report = run_prtr(&node, &calls, &ExecCtx::default()).unwrap();
    let timing = &report.calls[0];
    let cfg = (timing.config_end.unwrap() - timing.config_start.unwrap()).as_secs_f64();
    assert!((cfg - node.icap.transfer_time_s(bytes)).abs() < 1e-9);
}

/// A partial bitstream generated for one module actually reconfigures the
/// region (frame-level), and the sizes used in timing are the generated
/// sizes — configuration *data* and configuration *time* are one story.
#[test]
fn bitstream_generation_matches_timing_inputs() {
    use prtr_bounds::fpga::frames::ConfigMemory;

    let fp = Floorplan::xd1_dual_prr();
    let cols = fp.prrs[0].region.column_indices();
    let mut mem = ConfigMemory::blank(&fp.device);
    mem.fill_region_pattern(&cols, 0xC0FE).unwrap();
    let bs = Bitstream::partial_module_based(&fp.device, &mem, &cols).unwrap();
    assert_eq!(
        bs.size_bytes(),
        NodeConfig::xd1_measured(&fp).prr_bitstream_bytes
    );
    let mut target = ConfigMemory::blank(&fp.device);
    let toggled = bs.apply(&mut target).unwrap();
    assert!(toggled > 0);
    assert!(target.diff_in_columns(&mem, &cols).unwrap().is_empty());
}
