//! Execution-context invariants: `ExecCtx::default()` reproduces the
//! pre-context pipeline bit-for-bit (golden values captured from the
//! serial, registry-twin implementation), `--jobs` changes wall-clock
//! only (reports, artifacts, and merged metrics are identical at any
//! parallelism), and `--seed` actually reaches the workload generators.

use prtr_bounds::exp::run_experiment;
use prtr_bounds::prelude::*;

fn curve<'a>(report: &'a serde_json::Value, label: &str) -> &'a serde_json::Value {
    report["curves"]
        .as_array()
        .unwrap()
        .iter()
        .find(|c| c["label"] == label)
        .unwrap()
}

/// Golden values for Figure 9(a), captured from the pre-`ExecCtx`
/// implementation: the default context must reproduce them exactly.
#[test]
fn default_ctx_reproduces_fig9a_goldens() {
    let r = run_experiment("fig9a", &ExecCtx::default()).unwrap();
    assert_eq!(
        r.json["peak_speedup_sim"].as_f64().unwrap(),
        6.800305039148967
    );
    assert_eq!(r.json["peak_x_task"].as_f64().unwrap(), 0.171463902384955);
}

/// Golden values for Figure 5 (pure model, no RNG): two curves spanning
/// the measured and estimated XD1 operating points.
#[test]
fn default_ctx_reproduces_fig5_goldens() {
    let r = run_experiment("fig5", &ExecCtx::default()).unwrap();
    let measured = curve(&r.json, "H=0, X_PRTR=0.012");
    assert_eq!(
        measured["peak_speedup"].as_f64().unwrap(),
        84.32785308239066
    );
    assert_eq!(
        measured["peak_x_task"].as_f64().unwrap(),
        0.011934236988687862
    );
    assert_eq!(
        measured["s_at_x_task_1"].as_f64().unwrap(),
        2.007717726439659
    );
    let half_hit = curve(&r.json, "H=0.5, X_PRTR=0.17");
    assert_eq!(
        half_hit["peak_speedup"].as_f64().unwrap(),
        11.707602339181284
    );
    assert_eq!(
        half_hit["s_at_x_task_10"].as_f64().unwrap(),
        1.1003851446400144
    );
}

/// Representative experiments must produce identical reports whether
/// the runner executes serially or across four worker threads.
#[test]
fn reports_are_identical_at_jobs_1_and_4() {
    for id in ["fig9a", "fig9b", "fig5", "ext-prefetch", "ext-multitask"] {
        let serial = run_experiment(id, &ExecCtx::default().with_jobs(1)).unwrap();
        let parallel = run_experiment(id, &ExecCtx::default().with_jobs(4)).unwrap();
        assert_eq!(serial.json, parallel.json, "{id} payload differs");
        assert_eq!(serial.body, parallel.body, "{id} body differs");
        assert_eq!(serial.title, parallel.title, "{id} title differs");
    }
}

/// The on-disk artifacts (report JSON + CSV series) must be
/// byte-identical at any parallelism.
#[test]
fn artifacts_are_byte_identical_at_jobs_1_and_4() {
    let base = std::env::temp_dir().join(format!("hprc-ctx-goldens-{}", std::process::id()));
    let write_all = |jobs: usize| {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).unwrap();
        let ctx = ExecCtx::default().with_jobs(jobs);
        for id in ["fig9a", "fig5"] {
            let report = run_experiment(id, &ctx).unwrap();
            report.write_json(&dir).unwrap();
            prtr_bounds::exp::write_series(id, &dir, &ctx).unwrap();
        }
        dir
    };
    let d1 = write_all(1);
    let d4 = write_all(4);
    let mut names: Vec<String> = std::fs::read_dir(&d1)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(names.iter().any(|n| n.ends_with(".csv")));
    assert!(names.iter().any(|n| n.ends_with(".json")));
    for name in &names {
        let a = std::fs::read(d1.join(name)).unwrap();
        let b = std::fs::read(d4.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between --jobs 1 and --jobs 4");
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// The index-ordered registry merge must reproduce the serial
/// instrument state: counters, gauges, and histogram digests agree
/// (spans carry wall-clock durations, so only their names/counts are
/// compared).
#[test]
fn merged_metrics_are_identical_at_jobs_1_and_4() {
    let snapshot = |jobs: usize| {
        let ctx = ExecCtx::default()
            .with_registry(Registry::new())
            .with_jobs(jobs);
        run_experiment("fig9b", &ctx).unwrap();
        ctx.registry.snapshot()
    };
    let serial = snapshot(1);
    let parallel = snapshot(4);
    assert!(!serial.counters.is_empty());
    assert_eq!(serial.counters, parallel.counters);
    assert_eq!(serial.gauges, parallel.gauges);
    let digest = |s: &prtr_bounds::obs::Snapshot| {
        s.histograms
            .iter()
            .map(|(k, h)| format!("{k}:{:?}", h))
            .collect::<Vec<_>>()
    };
    assert_eq!(digest(&serial), digest(&parallel));
    let span_names =
        |s: &prtr_bounds::obs::Snapshot| s.spans.iter().map(|r| r.name.clone()).collect::<Vec<_>>();
    assert_eq!(span_names(&serial), span_names(&parallel));
}

/// A non-zero base seed must reach the seed-dependent workload
/// generators (here, the Zipf/phased/uniform traces of `ext-prefetch`)
/// while leaving pure-model experiments untouched.
#[test]
fn base_seed_shifts_workload_streams() {
    let base = run_experiment("ext-prefetch", &ExecCtx::default()).unwrap();
    let reseeded = run_experiment("ext-prefetch", &ExecCtx::default().with_seed(1)).unwrap();
    assert_ne!(
        base.json, reseeded.json,
        "seed must perturb stochastic workloads"
    );
    let model_a = run_experiment("fig5", &ExecCtx::default()).unwrap();
    let model_b = run_experiment("fig5", &ExecCtx::default().with_seed(1)).unwrap();
    assert_eq!(model_a.json, model_b.json, "fig5 is seed-free");
}
