//! Cross-crate observability tests: the instrumented substrates must
//! measure the same `H` the model is fed (satellite of the hprc-obs
//! work), and the exported Chrome traces must be valid, well-ordered
//! trace-event JSON.

use prtr_bounds::exp::experiments::fig9::{peak_timeline, Panel};
use prtr_bounds::exp::scenario::model_params_for;
use prtr_bounds::obs::Registry;
use prtr_bounds::prelude::*;
use prtr_bounds::sched::policies::{AlwaysMiss, Belady};
use prtr_bounds::sched::policy::Policy;
use prtr_bounds::sched::simulate::simulate;

/// The measured hit ratio — read back from the instrumented cache's
/// counters — must be exactly the `H` (equivalently `1 - M`) handed to
/// the analytical model, for both ends of the policy spectrum.
#[test]
fn measured_hit_ratio_matches_model_input() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let spec = TraceSpec::Looping {
        stages: 3,
        n_tasks: 3,
        noise: 0.0,
        len: 300,
    };
    let trace = spec.generate(11);

    let cases: Vec<(&str, Box<dyn Policy>)> = vec![
        ("always-miss", Box::new(AlwaysMiss::new())),
        ("belady", Box::new(Belady::new())),
    ];
    for (name, mut policy) in cases {
        let registry = Registry::new();
        let ctx = ExecCtx::default().with_registry(registry.clone());
        let outcome = simulate(&trace, node.n_prrs, policy.as_mut(), false, &ctx);
        let snap = registry.snapshot();
        let hits = snap.counters[&format!("sched.{name}.hits")] as f64;
        let calls = snap.counters[&format!("sched.{name}.calls")] as f64;
        let measured_h = hits / calls;
        assert_eq!(
            measured_h,
            outcome.hit_ratio(),
            "{name}: counter-derived H diverges from the outcome's"
        );
        // Feed the measured H into the model exactly as the harness does:
        // its M must be 1 - H bit-for-bit (equation 5's M = 1 - H).
        let params = model_params_for(&node, node.t_prtr_s(), measured_h, trace.len() as u64);
        assert_eq!(params.miss_ratio(), 1.0 - measured_h, "{name}");
        assert_eq!(snap.gauges[&format!("sched.{name}.hit_ratio")], measured_h);
    }
    // Sanity on the spectrum itself: Belady on a loyal looping trace
    // hits after warmup; AlwaysMiss never does.
    // (3 tasks cycling over 2 PRRs: Belady keeps the farthest-reuse out.)
}

/// Golden test for the Chrome trace-event export: the serialized trace
/// must parse as JSON, every event must carry the complete-event fields,
/// events must not overlap within one (pid, tid) lane, and no event may
/// extend past the simulation's end time.
#[test]
fn chrome_trace_is_valid_and_well_ordered() {
    let timeline = peak_timeline(Panel::Measured, 30, &ExecCtx::default());
    let events = timeline.chrome_events(1);
    assert!(!events.is_empty());

    // Valid JSON array of trace-event objects.
    let json = serde_json::to_string(&events).expect("events serialize");
    let parsed = serde_json::from_str(&json).expect("trace parses as JSON");
    let arr = parsed.as_array().expect("trace is a JSON array");
    assert_eq!(arr.len(), events.len());
    for ev in arr {
        assert_eq!(ev["ph"], "X", "complete events only");
        assert!(ev["name"].as_str().is_some_and(|n| !n.is_empty()));
        for field in ["ts", "dur", "pid", "tid"] {
            assert!(ev[field].as_u64().is_some(), "missing {field}: {ev:?}");
        }
    }

    // Non-overlapping per (pid, tid): sort by lane then start.
    let mut evs = events.clone();
    evs.sort_by_key(|e| (e.pid, e.tid, e.ts));
    for pair in evs.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if (a.pid, a.tid) == (b.pid, b.tid) {
            assert!(
                a.ts + a.dur <= b.ts,
                "overlap on tid {}: [{}, {}] then [{}, {}]",
                a.tid,
                a.ts,
                a.ts + a.dur,
                b.ts,
                b.ts + b.dur
            );
        }
    }

    // Nothing extends past the simulation end (floored to µs, as the
    // export floors both endpoints).
    let end_us = timeline.span_end().0 / 1_000;
    for e in &events {
        assert!(e.ts + e.dur <= end_us, "event past sim end: {e:?}");
    }
}

/// The `--trace` export's metrics snapshot round-trips through JSON with
/// the measured quantities the acceptance criteria name: config-port
/// utilization, per-lane busy time, and the measured cache hit ratio.
#[test]
fn metrics_snapshot_serializes_acceptance_quantities() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let registry = Registry::new();
    let ctx = ExecCtx::default().with_registry(registry.clone());
    let _ = prtr_bounds::exp::scenario::figure9_point(&node, node.t_prtr_s(), 50, &ctx);
    let snap = registry.snapshot();
    let json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    let v = serde_json::from_str(&json).expect("snapshot parses");
    assert!(
        v["gauges"]["sim.prtr.config_port.utilization"]
            .as_f64()
            .unwrap()
            > 0.0
    );
    assert!(v["gauges"]["sim.prtr.lane_busy_s.config"].as_f64().unwrap() > 0.0);
    assert_eq!(v["gauges"]["exp.measured_hit_ratio"].as_f64().unwrap(), 0.0);
    assert_eq!(
        v["counters"]["sched.always-miss.calls"].as_u64().unwrap(),
        50
    );
    assert!(
        v["histograms"]["sim.prtr.call_latency_s"]["count"]
            .as_u64()
            .unwrap()
            > 0
    );
}
