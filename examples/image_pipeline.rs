//! Image pipeline: run the paper's actual workload — median → smoothing →
//! Sobel over real image data — functionally (verifying the results), then
//! replay the same call sequence on the simulated HPRC node to see what
//! run-time reconfiguration costs under FRTR vs PRTR.
//!
//! Run with: `cargo run --release --example image_pipeline`

use prtr_bounds::prelude::*;
use prtr_bounds::sched::cache::TaskId;
use prtr_bounds::sched::simulate::CallOutcome;

fn main() {
    // --- 1. The functional workload: denoise + edge-detect frames. ------
    let frames = 12usize;
    let (w, h) = (512usize, 512usize);
    let pipeline = Pipeline::denoise_edges();
    println!(
        "Processing {frames} frames of {w}x{h} through {:?} stages...",
        pipeline.call_trace()
    );
    let mut edge_pixels = 0u64;
    for f in 0..frames {
        let frame = Image::random(w, h, f as u64);
        let out = pipeline.run_parallel(&frame, 4);
        edge_pixels += out.pixels().iter().filter(|&&p| p > 128).count() as u64;
        // The parallel path is bit-identical to the sequential one.
        debug_assert_eq!(out, pipeline.run(&frame));
    }
    println!("Strong edge pixels across all frames: {edge_pixels}\n");

    // --- 2. The same workload as a hardware task-call trace. ------------
    // Each stage is one hardware function call; 3 cores rotate through the
    // 2 PRRs of the dual layout, so plain demand caching always misses —
    // the pathological case the paper's experiment measures.
    let floorplan = Floorplan::xd1_dual_prr();
    let node = NodeConfig::xd1_measured(&floorplan);
    let trace: Vec<TaskId> = (0..frames * 3).map(|i| TaskId(i % 3)).collect();

    let mut lru = Lru::new();
    let ctx = ExecCtx::default();
    let outcome = simulate(&trace, node.n_prrs, &mut lru, false, &ctx);
    println!(
        "LRU over 2 PRRs on the 3-stage loop: H = {:.2} (thrashing, as expected)",
        outcome.hit_ratio()
    );
    let mut markov = Markov::new();
    let prefetched = simulate(&trace, node.n_prrs, &mut markov, true, &ctx);
    println!(
        "Markov prefetcher on the same trace:  H = {:.2}\n",
        prefetched.hit_ratio()
    );

    // --- 3. Execute both schedules on the node simulator. ---------------
    let bytes = (w * h) as u64; // one byte per pixel, in and out
    let to_calls = |outc: &prtr_bounds::sched::simulate::SimulationOutcome| -> Vec<PrtrCall> {
        trace
            .iter()
            .zip(&outc.outcomes)
            .map(|(&t, o)| {
                let (hit, slot) = match *o {
                    CallOutcome::Hit { slot } => (true, slot),
                    CallOutcome::Miss { slot, .. } => (false, slot),
                };
                let name = ["Median Filter", "Smoothing Filter", "Sobel Filter"][t.0];
                PrtrCall {
                    task: TaskCall::symmetric(name, bytes),
                    hit,
                    slot,
                }
            })
            .collect()
    };

    let lru_calls = to_calls(&outcome);
    let markov_calls = to_calls(&prefetched);
    let frtr_calls: Vec<TaskCall> = lru_calls.iter().map(|c| c.task).collect();

    let frtr = run_frtr(&node, &frtr_calls, &ctx).unwrap();
    let prtr_lru = run_prtr(&node, &lru_calls, &ctx).unwrap();
    let prtr_markov = run_prtr(&node, &markov_calls, &ctx).unwrap();

    let t_task = frtr_calls[0].task_time_s(&node);
    println!(
        "Per-call task time: {:.2} ms (X_task = {:.4}); T_PRTR = {:.2} ms.",
        t_task * 1e3,
        t_task / node.t_frtr_s(),
        node.t_prtr_s() * 1e3
    );
    println!("{} hardware calls:", frtr_calls.len());
    println!(
        "  FRTR:                 {:>8.2} s   (reconfigures the whole FPGA {} times)",
        frtr.total_s(),
        frtr.n_config
    );
    println!(
        "  PRTR + LRU:           {:>8.2} s   ({}x vs FRTR, {} partial configs)",
        prtr_lru.total_s(),
        (frtr.total_s() / prtr_lru.total_s()).round(),
        prtr_lru.n_config
    );
    println!(
        "  PRTR + Markov:        {:>8.2} s   ({}x vs FRTR, {} partial configs)",
        prtr_markov.total_s(),
        (frtr.total_s() / prtr_markov.total_s()).round(),
        prtr_markov.n_config
    );
}
