//! Quickstart: evaluate the PRTR-vs-FRTR model at the paper's measured
//! Cray XD1 operating points, then confirm the numbers end to end on the
//! node simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use prtr_bounds::prelude::*;

fn main() {
    // --- 1. Build the platform: XC2VP50 with the dual-PRR layout. -------
    let floorplan = Floorplan::xd1_dual_prr();
    let node = NodeConfig::xd1_measured(&floorplan);
    println!("Device:            {}", floorplan.device.name);
    println!(
        "Full bitstream:    {} bytes -> T_FRTR = {:.2} ms (measured, incl. vendor API)",
        floorplan.device.full_bitstream_bytes(),
        node.t_frtr_s() * 1e3
    );
    println!(
        "PRR bitstream:     {} bytes -> T_PRTR = {:.2} ms (measured, via ICAP)",
        node.prr_bitstream_bytes,
        node.t_prtr_s() * 1e3
    );
    println!("X_PRTR:            {:.4}\n", node.x_prtr());

    // --- 2. Ask the analytical model for the speedup landscape. ---------
    println!("Asymptotic speedup S_inf (equation 7), H = 0:");
    println!("{:>10}  {:>8}", "X_task", "S_inf");
    for factor in [0.1, 0.5, 1.0, 2.0, 10.0, 1.0 / node.x_prtr()] {
        let x_task = factor * node.x_prtr();
        let params = ModelParams::experimental(x_task, node.x_prtr(), 0.0, 1);
        println!("{:>10.4}  {:>8.2}", x_task, asymptotic_speedup(&params));
    }
    let peak = ModelParams::experimental(node.x_prtr(), node.x_prtr(), 0.0, 1);
    println!(
        "\nPeak: S = 1 + 1/X_PRTR = {:.1}x at X_task = X_PRTR (paper: \"up to 87x\").\n",
        asymptotic_speedup(&peak)
    );

    // --- 3. Confirm on the simulator: 200 calls at the peak point. ------
    let n = 200;
    let calls: Vec<PrtrCall> = (0..n)
        .map(|i| PrtrCall {
            task: TaskCall::with_task_time("Sobel Filter", &node, node.t_prtr_s()),
            hit: false, // the paper's no-prefetch experimental setup
            slot: i % node.n_prrs,
        })
        .collect();
    let frtr_calls: Vec<TaskCall> = calls.iter().map(|c| c.task).collect();
    let ctx = ExecCtx::default();
    let frtr = run_frtr(&node, &frtr_calls, &ctx).expect("FRTR run");
    let prtr = run_prtr(&node, &calls, &ctx).expect("PRTR run");
    println!("Simulator, {n} calls at the peak operating point:");
    println!("  FRTR total: {:>9.2} s", frtr.total_s());
    println!("  PRTR total: {:>9.2} s", prtr.total_s());
    println!(
        "  Speedup:    {:>9.1} x  (model predicts {:.1}x at n = {n})",
        frtr.total_s() / prtr.total_s(),
        {
            let params = ModelParams::experimental(
                node.x_prtr(),
                node.x_prtr(),
                node.control_overhead_s / node.t_frtr_s(),
                n as u64,
            );
            speedup(&params)
        }
    );
}
