//! Design-space exploration: use the FPGA substrate end to end — check
//! that a new core fits a PRR (synthesis estimation + placement), compare
//! bitstream flows, and pick a PRR granularity for a target workload —
//! the workflow a Cray XD1 user would follow before committing to a
//! partial-reconfiguration design.
//!
//! Run with: `cargo run --release --example design_space`

use prtr_bounds::fpga::bitstream::{difference_based_inventory, module_based_inventory};
use prtr_bounds::fpga::estimate::{FilterOp, KernelSpec};
use prtr_bounds::fpga::module::{HwModule, ModuleClass};
use prtr_bounds::fpga::placement::place_in_prr;
use prtr_bounds::prelude::*;

fn main() {
    // --- 1. Estimate a new 5x5 median core and try to place it. ---------
    let spec = KernelSpec {
        window_rows: 5,
        window_cols: 5,
        bits_per_pixel: 8,
        max_line_width: 1024,
        op: FilterOp::SortingNetwork {
            compare_exchanges: 99,
        },
        pipeline_stages: 11,
    };
    let estimated = spec.estimate();
    println!(
        "Estimated 5x5 median core: {} LUTs, {} FFs, {} BRAM",
        estimated.luts, estimated.ffs, estimated.brams
    );
    let candidate = HwModule {
        name: "Median 5x5".into(),
        class: ModuleClass::Application,
        resources: estimated,
        freq_mhz: 200.0,
        throughput_per_clock: 1.0,
        pipeline_latency_clocks: 2 * 1024,
    };
    for (layout_name, fp) in [
        ("single-PRR", Floorplan::xd1_single_prr()),
        ("dual-PRR", Floorplan::xd1_dual_prr()),
        ("quad-PRR", Floorplan::xd1_quad_prr()),
    ] {
        match place_in_prr(&fp, 0, &candidate, 200.0) {
            Ok(p) => println!(
                "  {layout_name:<10} -> fits PRR0 at {:.0}% LUT utilization",
                p.utilization.luts * 100.0
            ),
            Err(e) => println!("  {layout_name:<10} -> {e}"),
        }
    }

    // --- 2. Bitstream flow choice for a 5-core library. ------------------
    let fp = Floorplan::xd1_dual_prr();
    let cols = fp.prrs[0].region.column_indices();
    let seeds: Vec<u64> = (0..5).collect();
    let mb = module_based_inventory(&fp.device, &cols, &seeds).unwrap();
    let db = difference_based_inventory(&fp.device, &cols, &seeds).unwrap();
    println!(
        "\n5-core library, one dual-layout PRR:\n  module-based:     {} bitstreams, {:.1} MB total\n  difference-based: {} bitstreams, {:.1} MB total",
        mb.bitstream_count,
        mb.total_bytes as f64 / 1e6,
        db.bitstream_count,
        db.total_bytes as f64 / 1e6
    );

    // --- 3. Pick a granularity for a target task time. -------------------
    // Suppose the workload's tasks take ~12 ms. The paper's rule: choose
    // partitions so X_PRTR = X_task.
    let t_task = 0.012;
    println!(
        "\nGranularity choice for T_task = {:.0} ms tasks:",
        t_task * 1e3
    );
    println!(
        "{:<12} {:>12} {:>10} {:>12}",
        "layout", "T_PRTR (ms)", "X_PRTR", "S_inf @ task"
    );
    for (name, fp) in [
        ("single-PRR", Floorplan::xd1_single_prr()),
        ("dual-PRR", Floorplan::xd1_dual_prr()),
        ("quad-PRR", Floorplan::xd1_quad_prr()),
    ] {
        let node = NodeConfig::xd1_measured(&fp);
        let params = ModelParams::experimental(
            t_task / node.t_frtr_s(),
            node.x_prtr(),
            node.control_overhead_s / node.t_frtr_s(),
            1,
        );
        println!(
            "{name:<12} {:>12.2} {:>10.4} {:>12.1}",
            node.t_prtr_s() * 1e3,
            node.x_prtr(),
            asymptotic_speedup(&params)
        );
    }
    println!(
        "\nReading: the layout whose T_PRTR is closest below T_task wins —\n\
         \"the partitions (PRRs) must be so fine grained to match the task\n\
         time requirements\" (paper, section 5)."
    );
}
