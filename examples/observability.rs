//! Observability: run an instrumented Figure 9 operating point and read
//! back what the node *measured* — cache hits, configuration-port
//! utilization, per-lane busy time, call-latency percentiles — from the
//! `hprc-obs` registry, then dump the snapshot as JSON.
//!
//! Run with: `cargo run --release --example observability`

use prtr_bounds::obs::Registry;
use prtr_bounds::prelude::*;
use prtr_bounds::sched::policies::Lru;
use prtr_bounds::sched::traces::TraceSpec;

fn main() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let registry = Registry::new();

    // A cache-friendly workload: two cores cycling over two PRRs under
    // LRU — after warmup every call hits, so PRTR runs config-free.
    let spec = TraceSpec::Looping {
        stages: 2,
        n_tasks: 2,
        noise: 0.0,
        len: 200,
    };
    let mut lru = Lru::new();
    let ctx = ExecCtx::default().with_registry(registry.clone());
    let (point, timeline) = prtr_bounds::exp::scenario::run_point(
        &node,
        &spec,
        7,
        &mut lru,
        false,
        node.t_prtr_s(),
        &ctx,
    );

    println!(
        "Sweep point: X_task = {:.4}, speedup {:.1}x (model {:.1}x)\n",
        point.x_task, point.speedup_sim, point.speedup_model
    );

    let snap = registry.snapshot();
    println!("Measured by the instrumented substrates:");
    println!(
        "  cache calls / hits:     {} / {}",
        snap.counters["sched.lru.calls"], snap.counters["sched.lru.hits"]
    );
    println!(
        "  measured H:             {:.3}",
        snap.gauges["exp.measured_hit_ratio"]
    );
    println!(
        "  partial configs:        {}",
        snap.counters["sim.prtr.partial_configs"]
    );
    println!(
        "  ICAP bytes moved:       {}",
        snap.counters["sim.icap.bytes"]
    );
    println!(
        "  config-port util:       {:.1}%",
        snap.gauges["sim.prtr.config_port.utilization"] * 100.0
    );
    let lat = &snap.histograms["sim.prtr.call_latency_s"];
    println!(
        "  call latency p50/p99:   {:.3} ms / {:.3} ms",
        lat.p50 * 1e3,
        lat.p99 * 1e3
    );
    println!("  spans recorded:         {}", snap.spans.len());

    // The PRTR timeline doubles as a Chrome trace (Perfetto-loadable).
    let events = timeline.chrome_events(1);
    println!(
        "\nChrome trace events: {} (write these as a JSON array,",
        events.len()
    );
    println!("or use `hprc-exp --trace DIR fig9b` for a ready-made file).\n");

    println!("Full snapshot as JSON:");
    println!(
        "{}",
        serde_json::to_string_pretty(&snap).expect("snapshot serializes")
    );
}
