//! Hardware virtualization: several applications sharing one FPGA under
//! an OS-style runtime — the paper's closing recommendation made
//! runnable. Compares FRTR vs PRTR multiplexing, scheduling disciplines,
//! and prints the PRTR timeline.
//!
//! Run with: `cargo run --release --example virtual_hardware`

use prtr_bounds::prelude::*;
use prtr_bounds::virt::runtime::SchedulerKind;
use prtr_bounds::virt::VirtCall;

fn main() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_quad_prr());
    println!(
        "Node: quad-PRR XC2VP50, T_FRTR = {:.2} s, T_PRTR = {:.1} ms, {} PRRs.\n",
        node.t_frtr_s(),
        node.t_prtr_s() * 1e3,
        node.n_prrs
    );

    // Four tenants: two loyal streaming apps, one 3-stage pipeline app,
    // and a latecomer with high priority.
    let mk_loyal = |id: usize, core: &str, calls, t| App::cycling(id, core, &[core], calls, t, 0.0);
    let apps = vec![
        mk_loyal(0, "Median Filter", 30, 0.004),
        mk_loyal(1, "Sobel Filter", 30, 0.004),
        App::cycling(
            2,
            "pipeline",
            &["Smoothing Filter", "Laplacian Filter"],
            30,
            0.004,
            0.0,
        ),
        App {
            priority: 1, // urgent
            ..App::cycling(3, "urgent-late", &["Threshold"], 10, 0.002, 0.05)
        },
    ];

    for (name, cfg) in [
        ("FRTR / FCFS", RuntimeConfig::frtr()),
        ("PRTR / FCFS", RuntimeConfig::prtr_overlapped()),
        (
            "PRTR / priority",
            RuntimeConfig {
                scheduler: SchedulerKind::Priority,
                ..RuntimeConfig::prtr_overlapped()
            },
        ),
    ] {
        let report = run_virtualized(&node, &apps, &cfg, &ExecCtx::default()).unwrap();
        println!("=== {name} ===");
        println!(
            "makespan {:.3} s | {} configs | config port busy {:.0}% | overall H = {:.2}",
            report.makespan_s,
            report.n_config,
            report.config_fraction() * 100.0,
            report.hit_ratio()
        );
        for a in &report.per_app {
            println!(
                "  {}: turnaround {:.3} s ({} calls, {} hits)",
                apps[a.app].name, a.turnaround_s, a.calls, a.hits
            );
        }
        println!();
    }

    // Show the first slice of the PRTR schedule as a Gantt chart.
    let small: Vec<App> = apps
        .iter()
        .map(|a| App {
            calls: a.calls.iter().take(4).cloned().collect::<Vec<VirtCall>>(),
            ..a.clone()
        })
        .collect();
    let report = run_virtualized(
        &node,
        &small,
        &RuntimeConfig::prtr_overlapped(),
        &ExecCtx::default(),
    )
    .unwrap();
    println!("PRTR schedule, first 4 calls per app (P = partial config, X = exec):");
    println!("{}", report.timeline.render_text(100));
}
