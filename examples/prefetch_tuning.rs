//! Prefetch tuning: the paper left configuration pre-fetching as future
//! work and modeled it through the hit ratio `H`. This example measures
//! `H` for every policy in the library across workloads with different
//! locality, then shows where on the Figure 5 landscape each lands.
//!
//! Run with: `cargo run --release --example prefetch_tuning`

use prtr_bounds::prelude::*;
use prtr_bounds::sched::policies::{Fifo, Lfu, RandomPolicy};
use prtr_bounds::sched::Policy;

fn main() {
    let node = NodeConfig::xd1_measured(&Floorplan::xd1_dual_prr());
    let len = 2_000;
    let workloads: Vec<(&str, TraceSpec)> = vec![
        (
            "video pipeline (3-stage loop)",
            TraceSpec::Looping {
                stages: 3,
                n_tasks: 3,
                noise: 0.0,
                len,
            },
        ),
        (
            "branchy pipeline (10% detours)",
            TraceSpec::Looping {
                stages: 3,
                n_tasks: 7,
                noise: 0.1,
                len,
            },
        ),
        (
            "hot-set workload (zipf 1.2)",
            TraceSpec::Zipf {
                n_tasks: 7,
                alpha: 1.2,
                len,
            },
        ),
        (
            "phase-local workload",
            TraceSpec::Phased {
                n_tasks: 7,
                working_set: 2,
                phase_len: 64,
                len,
            },
        ),
    ];

    println!(
        "Measured hit ratios over {} PRR slots ({len}-call traces):\n",
        node.n_prrs
    );
    println!(
        "{:<32} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "fifo", "lru", "lfu", "random", "belady", "markov+pf"
    );
    for (name, spec) in &workloads {
        let trace = spec.generate(7);
        let h = |policy: &mut dyn Policy, prefetch: bool| {
            simulate(&trace, node.n_prrs, policy, prefetch, &ExecCtx::default()).hit_ratio()
        };
        println!(
            "{:<32} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            h(&mut Fifo::new(), false),
            h(&mut Lru::new(), false),
            h(&mut Lfu::new(), false),
            h(&mut RandomPolicy::new(1), false),
            h(&mut Belady::new(), false),
            h(&mut Markov::new(), true),
        );
    }

    // Where does a given H land on the speedup landscape? Evaluate the
    // model at the configuration-bound point T_task = 0.25 * T_PRTR.
    let x_task = 0.25 * node.x_prtr();
    println!("\nModel speedup at X_task = {x_task:.4} (configuration-bound) as H grows:");
    println!("{:>6}  {:>8}", "H", "S_inf");
    for h in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let params = ModelParams::new(
            NormalizedTimes {
                x_task,
                x_control: node.control_overhead_s / node.t_frtr_s(),
                x_decision: 0.0,
                x_prtr: node.x_prtr(),
            },
            h,
            1,
        )
        .unwrap();
        println!("{h:>6.2}  {:>8.1}", asymptotic_speedup(&params));
    }
    println!(
        "\nReading: every point of hit ratio a prefetcher earns converts\n\
         directly into speedup in the configuration-bound regime; in the\n\
         task-bound regime (X_task > X_PRTR) prefetching is irrelevant,\n\
         exactly as Figure 5 predicts."
    );
}
